#include "exec/thread_pool.h"

#include <string>
#include <utility>

#include "obs/clock.h"
#include "obs/obs.h"
#include "util/check.h"

namespace bcast {

namespace {

// Which pool (if any) the current thread belongs to. A thread can only ever
// be a worker of one pool, so a single pair suffices.
struct WorkerIdentity {
  const ThreadPool* pool = nullptr;
  int index = -1;
};
thread_local WorkerIdentity tls_worker;

}  // namespace

ThreadPool::ThreadPool(int num_threads, TaskHook task_hook)
    : task_hook_(std::move(task_hook)) {
  BCAST_CHECK_GE(num_threads, 1) << "thread pool needs at least one worker";
  // Sampled once: per-task clock reads only happen when someone will consume
  // them, and the flag never changes while workers are running.
  record_timing_ = obs::MetricsEnabled();
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    // The lock pairs the flag flip with the cv wait: a worker that just saw
    // stopping_ == false cannot miss the notify.
    MutexLock lock(&idle_mutex_);
    stopping_.store(true, std::memory_order_release);
  }
  idle_cv_.NotifyAll();
  for (std::thread& thread : threads_) thread.join();

  // Flush pool telemetry after the join: the worker tallies are stable now,
  // and a pool that lived through several searches reports its whole life.
  obs::Registry* registry = obs::GlobalMetrics();
  if (registry == nullptr) return;
  uint64_t tasks_run = 0;
  uint64_t busy_ns = 0;
  obs::Histogram worker_tasks = registry->GetHistogram("pool.worker_tasks");
  obs::Histogram worker_busy = registry->GetHistogram("pool.worker_busy_ns");
  for (const std::unique_ptr<Worker>& worker : workers_) {
    tasks_run += worker->tasks_run;
    busy_ns += worker->busy_ns;
    worker_tasks.Record(worker->tasks_run);
    if (record_timing_) worker_busy.Record(worker->busy_ns);
  }
  registry->GetCounter("pool.tasks_run").Add(tasks_run);
  registry->GetCounter("pool.busy_ns").Add(busy_ns);
  registry->GetCounter("pool.steals")
      .Add(steals_.load(std::memory_order_relaxed));
  registry->GetCounter("pool.failed_steals")
      .Add(failed_steals_.load(std::memory_order_relaxed));
  registry->GetCounter("pool.task_exceptions")
      .Add(task_exceptions_.load(std::memory_order_relaxed));
}

int ThreadPool::HardwareConcurrency() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

int ThreadPool::CurrentWorkerIndex() const {
  return tls_worker.pool == this ? tls_worker.index : -1;
}

void ThreadPool::Submit(std::function<void()> task) {
  BCAST_CHECK(task != nullptr);
  int target = CurrentWorkerIndex();
  if (target < 0) {
    target = static_cast<int>(next_external_.fetch_add(1, std::memory_order_relaxed) %
                              workers_.size());
  }
  Worker& worker = *workers_[static_cast<size_t>(target)];
  {
    MutexLock lock(&worker.mutex);
    worker.tasks.push_back(std::move(task));
  }
  pending_.fetch_add(1, std::memory_order_release);
  {
    // Serialize with the sleepers' predicate check: a worker is either still
    // holding idle_mutex_ (and will see the new pending_ count) or already
    // asleep (and will hear the notify). Without this lock the increment can
    // slip between a worker's failed predicate check and its sleep.
    MutexLock lock(&idle_mutex_);
  }
  idle_cv_.NotifyOne();
}

std::function<void()> ThreadPool::TakeTask(int self) {
  const int n = num_threads();
  // Own deque first, newest task (LIFO).
  {
    Worker& own = *workers_[static_cast<size_t>(self)];
    MutexLock lock(&own.mutex);
    if (!own.tasks.empty()) {
      std::function<void()> task = std::move(own.tasks.back());
      own.tasks.pop_back();
      return task;
    }
  }
  // Steal the oldest task of the first non-empty victim.
  for (int offset = 1; offset < n; ++offset) {
    Worker& victim = *workers_[static_cast<size_t>((self + offset) % n)];
    MutexLock lock(&victim.mutex);
    if (!victim.tasks.empty()) {
      std::function<void()> task = std::move(victim.tasks.front());
      victim.tasks.pop_front();
      steals_.fetch_add(1, std::memory_order_relaxed);
      return task;
    }
  }
  if (n > 1) failed_steals_.fetch_add(1, std::memory_order_relaxed);
  return nullptr;
}

void ThreadPool::RunGuarded(const std::function<void()>& task) {
  try {
    task();
  } catch (...) {
    // Only raw Submit() tasks can land here — TaskGroup's wrapper catches
    // its own task's exceptions and reports them through Wait(). With no
    // waiter to tell, count and carry on rather than std::terminate the
    // whole process for one bad task.
    task_exceptions_.fetch_add(1, std::memory_order_relaxed);
  }
}

void ThreadPool::WorkerLoop(int index) {
  tls_worker = {this, index};
  for (;;) {
    std::function<void()> task = TakeTask(index);
    if (task != nullptr) {
      // The decrement happens after the take so pending_ over-approximates
      // runnable work and sleepers never under-wake.
      pending_.fetch_sub(1, std::memory_order_acq_rel);
      Worker& self = *workers_[static_cast<size_t>(index)];
      if (record_timing_) {
        const uint64_t begin_ns = obs::MonotonicNanos();
        RunGuarded(task);
        self.busy_ns += obs::MonotonicNanos() - begin_ns;
      } else {
        RunGuarded(task);
      }
      ++self.tasks_run;
      continue;
    }
    MutexLock lock(&idle_mutex_);
    if (stopping_.load(std::memory_order_acquire) &&
        pending_.load(std::memory_order_acquire) == 0) {
      return;  // drained: nothing queued anywhere, and no more will arrive
    }
    idle_cv_.Wait(&idle_mutex_, [this] {
      return pending_.load(std::memory_order_acquire) > 0 ||
             stopping_.load(std::memory_order_acquire);
    });
  }
}

TaskGroup::TaskGroup(ThreadPool* pool, const CancelToken* cancel)
    : pool_(pool), cancel_(cancel) {
  BCAST_CHECK(pool != nullptr);
}

void TaskGroup::RecordError(Status status) {
  obs::GetCounter("pool.group_task_errors").Increment();
  MutexLock lock(&mutex_);
  if (first_error_.ok()) first_error_ = std::move(status);
}

void TaskGroup::Run(std::function<void()> task) {
  outstanding_.fetch_add(1, std::memory_order_acq_rel);
  const uint64_t task_index = pool_->NextTaskIndex();
  pool_->Submit([this, task_index, task = std::move(task)] {
    // A task dequeued after cancellation skips its body but still counts as
    // finished — the outstanding_ decrement below must run exactly once per
    // task no matter what, or Wait() hangs forever.
    if (cancel_ == nullptr || !cancel_->cancelled()) {
      try {
        const ThreadPool::TaskHook& hook = pool_->task_hook();
        if (hook) hook(task_index);
        task();
      } catch (const std::exception& e) {
        RecordError(
            InternalError(std::string("pool task threw: ") + e.what()));
      } catch (...) {
        RecordError(InternalError("pool task threw a non-std exception"));
      }
    } else {
      obs::GetCounter("pool.tasks_skipped_cancelled").Increment();
    }
    if (outstanding_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Last task out: pair with the Wait() predicate under the lock so the
      // waiter cannot check-then-sleep between our decrement and notify.
      MutexLock lock(&mutex_);
      cv_.NotifyAll();
    }
  });
}

Status TaskGroup::Wait() {
  BCAST_CHECK_EQ(pool_->CurrentWorkerIndex(), -1)
      << "TaskGroup::Wait() on a pool worker would deadlock";
  MutexLock lock(&mutex_);
  cv_.Wait(&mutex_, [this] {
    return outstanding_.load(std::memory_order_acquire) == 0;
  });
  return first_error_;
}

}  // namespace bcast
