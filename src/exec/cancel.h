// Cooperative cancellation for in-flight work.
//
// A CancelToken is a one-way latch shared between a controller (the planner
// loop, a CLI timeout handler, a test) and the workers it wants to be able to
// stop. Workers poll cancelled() at a bounded granularity — the search engines
// check once per node expansion — so after Cancel() the remaining work is
// bounded by (number of in-flight workers) x (one expansion each) before
// everyone unwinds. Cancellation is cooperative and irreversible: there is no
// Reset(), a fresh token is cheap.

#ifndef BCAST_EXEC_CANCEL_H_
#define BCAST_EXEC_CANCEL_H_

#include <atomic>

namespace bcast {

/// One-way cancellation latch. Thread-safe; poll-based (no callbacks).
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Requests cancellation. Idempotent; safe from any thread.
  void Cancel() { cancelled_.store(true, std::memory_order_release); }

  /// True once Cancel() has been called. Relaxed-cheap: intended to be polled
  /// on hot paths (once per search expansion).
  bool cancelled() const { return cancelled_.load(std::memory_order_relaxed); }

 private:
  std::atomic<bool> cancelled_{false};
};

}  // namespace bcast

#endif  // BCAST_EXEC_CANCEL_H_
