#include "exec/state_store.h"

#include <cstring>

#include "util/check.h"

namespace bcast {

namespace {

size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

// SplitMix64 finalizer over the full (mask, last_set, depth) key. Every bit
// of the key reaches every bit of the hash, so linear probing does not
// cluster on the low-entropy depth field.
// bcast: hot
uint64_t HashKey(const BnbState& state) {
  uint64_t x = state.mask ^ (state.last_set * 0x9E3779B97F4A7C15ull) ^
               (static_cast<uint64_t>(static_cast<uint32_t>(state.depth))
                << 32);
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 31;
  return x;
}

// Arena chunk granularity: big enough that a thread claims a chunk every few
// thousand entries, small enough that per-thread tail waste is noise.
constexpr size_t kChunkBytes = 256 * 1024;

// Average-entry-size estimate for the auto arena budget: a 32-byte header
// plus a dozen prefix words covers the committed bench families with room
// for CAS-replacement garbage.
constexpr size_t kAutoBytesPerCell = 128;

}  // namespace

struct ConcurrentStateStore::Entry {
  uint64_t mask;
  uint64_t last_set;
  double v;
  int32_t depth;
  uint32_t prefix_len;

  // The prefix words live immediately after the header, in the same arena
  // block (NewEntry sizes the allocation accordingly).
  const uint64_t* prefix() const {
    return reinterpret_cast<const uint64_t*>(this + 1);
  }
  uint64_t* mutable_prefix() { return reinterpret_cast<uint64_t*>(this + 1); }

  static_assert(sizeof(uint64_t) * 2 + sizeof(double) + sizeof(int32_t) +
                        sizeof(uint32_t) ==
                    32,
                "header fields pack to 32 bytes; prefix words stay 8-aligned");
};

ConcurrentStateStore::ConcurrentStateStore(const BnbProblem& problem,
                                           const StateStoreOptions& options)
    : problem_(problem),
      capacity_(RoundUpPow2(options.capacity > 0 ? options.capacity : 1)),
      max_probe_(options.max_probe > 0 ? options.max_probe : 1),
      max_cas_retries_(options.max_cas_retries > 0 ? options.max_cas_retries
                                                   : 1),
      arena_(
          [&] {
            const size_t budget = options.arena_bytes > 0
                                      ? options.arena_bytes
                                      : capacity_ * kAutoBytesPerCell;
            return budget < kChunkBytes ? budget : kChunkBytes;
          }(),
          [&] {
            const size_t budget = options.arena_bytes > 0
                                      ? options.arena_bytes
                                      : capacity_ * kAutoBytesPerCell;
            return (budget + kChunkBytes - 1) / kChunkBytes;
          }()),
      cells_(new std::atomic<Entry*>[capacity_]()) {}

ConcurrentStateStore::~ConcurrentStateStore() = default;

ConcurrentStateStore::Entry* ConcurrentStateStore::NewEntry(
    const BnbState& state, const std::vector<uint64_t>& prefix) {
  void* block = arena_.Alloc(sizeof(Entry) + prefix.size() * sizeof(uint64_t));
  if (block == nullptr) return nullptr;
  // Placement construction into arena memory — no heap traffic.
  // bcast-lint: allow(hot-path-alloc)
  Entry* entry = new (block) Entry;
  entry->mask = state.mask;
  entry->last_set = state.last_set;
  entry->v = state.v;
  entry->depth = state.depth;
  entry->prefix_len = static_cast<uint32_t>(prefix.size());
  if (!prefix.empty()) {
    std::memcpy(entry->mutable_prefix(), prefix.data(),
                prefix.size() * sizeof(uint64_t));
  }
  return entry;
}

// bcast: hot
bool ConcurrentStateStore::EntryDominates(
    const Entry& entry, const BnbState& state,
    const std::vector<uint64_t>& prefix) const {
  if (entry.v < state.v) return true;
  if (entry.v > state.v) return false;
  const uint64_t* recorded = entry.prefix();
  for (uint32_t i = 0; i < entry.prefix_len; ++i) {
    if (recorded[i] != prefix[i]) {
      return problem_.SubsetLess(recorded[i], prefix[i]);
    }
  }
  // Identical path — the state is literally the recorded one; skipping the
  // revisit is trivially sound.
  return true;
}

// bcast: hot
bool ConcurrentStateStore::CheckDominatedOrInsert(
    const BnbState& state, const std::vector<uint64_t>& prefix) {
  const size_t index_mask = capacity_ - 1;
  size_t index = static_cast<size_t>(HashKey(state)) & index_mask;
  Entry* mine = nullptr;  // built lazily, reusable across cells (same bytes)
  for (size_t probe = 0; probe < max_probe_; ++probe) {
    std::atomic<Entry*>& cell = cells_[index];
    Entry* current = cell.load(std::memory_order_acquire);
    if (current == nullptr) {
      if (mine == nullptr) {
        mine = NewEntry(state, prefix);
        if (mine == nullptr) {  // arena exhausted — stop memoizing
          evictions_.fetch_add(1, std::memory_order_relaxed);
          return false;
        }
      }
      if (cell.compare_exchange_strong(current, mine,
                                       std::memory_order_release,
                                       std::memory_order_acquire)) {
        inserts_.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
      // Lost the claim; `current` is the winner — fall through to the key
      // check (a cell's key never changes after first publication).
    }
    if (current->mask == state.mask && current->last_set == state.last_set &&
        current->depth == state.depth &&
        current->prefix_len == prefix.size()) {
      int retries = 0;
      while (true) {
        if (EntryDominates(*current, state, prefix)) {
          hits_.fetch_add(1, std::memory_order_relaxed);
          return true;
        }
        if (mine == nullptr) {
          mine = NewEntry(state, prefix);
          if (mine == nullptr) {
            evictions_.fetch_add(1, std::memory_order_relaxed);
            return false;
          }
        }
        if (cell.compare_exchange_strong(current, mine,
                                         std::memory_order_release,
                                         std::memory_order_acquire)) {
          inserts_.fetch_add(1, std::memory_order_relaxed);
          dominated_.fetch_add(1, std::memory_order_relaxed);
          return false;
        }
        cas_retries_.fetch_add(1, std::memory_order_relaxed);
        if (++retries >= max_cas_retries_) {  // bounded retry — give up
          evictions_.fetch_add(1, std::memory_order_relaxed);
          return false;
        }
      }
    }
    index = (index + 1) & index_mask;
  }
  evictions_.fetch_add(1, std::memory_order_relaxed);  // probe limit: full
  return false;
}

StateStoreCounters ConcurrentStateStore::Counters() const {
  StateStoreCounters counters;
  counters.hits = hits_.load(std::memory_order_relaxed);
  counters.inserts = inserts_.load(std::memory_order_relaxed);
  counters.dominated = dominated_.load(std::memory_order_relaxed);
  counters.evictions = evictions_.load(std::memory_order_relaxed);
  counters.cas_retries = cas_retries_.load(std::memory_order_relaxed);
  counters.entries = counters.inserts - counters.dominated;
  return counters;
}

}  // namespace bcast
