// Work-stealing thread pool: the execution substrate of the parallel search
// engine (exec/parallel_search.h) and the batch planner (core/PlanMany).
//
// Each worker owns a deque. The owner pushes and pops at the back (LIFO, so a
// worker descends depth-first into the subtree it just split, keeping its
// working set cache-hot); idle workers steal from the *front* of a victim's
// deque (FIFO, so thieves take the oldest — and for branch-and-bound the
// largest — subtasks, which amortizes the steal over the most work). External
// (non-worker) submitters round-robin across the deques.
//
// The pool knows nothing about search: tasks are plain std::function<void()>.
// Determinism therefore cannot come from the executor — callers that need
// order-independent results (ParallelSearch) must make every task outcome
// commutative. Destruction drains: queued tasks (including tasks submitted by
// running tasks) all execute before the workers join.

#ifndef BCAST_EXEC_THREAD_POOL_H_
#define BCAST_EXEC_THREAD_POOL_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace bcast {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (checked >= 1). Use HardwareConcurrency()
  /// to size the pool to the machine.
  explicit ThreadPool(int num_threads);

  /// Drains every queued task, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues a task. Callable from any thread, including from inside a
  /// running task (the task lands on the submitting worker's own deque).
  void Submit(std::function<void()> task);

  /// std::thread::hardware_concurrency(), clamped to >= 1 (the standard
  /// allows 0 for "unknown").
  static int HardwareConcurrency();

  /// Index of the calling worker within this pool, or -1 for foreign threads.
  /// Exposed for tests and for callers that shard per-worker state.
  int CurrentWorkerIndex() const;

  /// Total tasks stolen from another worker's deque (telemetry; approximate
  /// ordering only, exact count).
  uint64_t steal_count() const { return steals_.load(std::memory_order_relaxed); }

  /// Steal scans that came up empty across every victim (a measure of how
  /// often workers spin hungry; telemetry, exact count).
  uint64_t failed_steal_count() const {
    return failed_steals_.load(std::memory_order_relaxed);
  }

 private:
  struct Worker {
    Mutex mutex;
    std::deque<std::function<void()>> tasks BCAST_GUARDED_BY(mutex);
    // Owner-thread tallies: written only by the worker thread that owns this
    // slot, read by the destructor after join (the join is the sync point),
    // so they stay plain fields — no atomic traffic on the task hot path.
    // Join-synchronized, not lock-guarded: deliberately unannotated.
    uint64_t tasks_run = 0;
    uint64_t busy_ns = 0;
  };

  void WorkerLoop(int index);

  // Pops one task for worker `self` (own back first, then steal a front).
  // Returns an empty function if nothing is runnable.
  std::function<void()> TakeTask(int self);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  // Queued-but-not-started task count; guards the idle wait.
  std::atomic<uint64_t> pending_{0};
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> next_external_{0};  // round-robin cursor
  std::atomic<uint64_t> steals_{0};
  std::atomic<uint64_t> failed_steals_{0};
  bool record_timing_ = false;  // fixed at construction (metrics installed?)
  // idle_mutex_ guards no fields — it exists to serialize the sleepers'
  // predicate checks (over the atomics above) with Submit()'s notify and the
  // destructor's stop flip, closing the check-then-sleep race.
  Mutex idle_mutex_;
  CondVar idle_cv_;
};

/// Completion tracking for a batch of pool tasks. Run() wraps the task with
/// an outstanding-count decrement; Wait() blocks until every task that was
/// Run() — including tasks Run() from inside other tasks — has finished.
/// Wait() must be called from a non-worker thread (a waiting worker would
/// deadlock a single-threaded pool).
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool* pool);

  /// Schedules `task` on the pool as part of this group.
  void Run(std::function<void()> task);

  /// Blocks until the group is empty.
  void Wait();

 private:
  ThreadPool* pool_;
  std::atomic<uint64_t> outstanding_{0};
  // Pairs the last task's decrement-and-notify with Wait()'s predicate
  // check; the count itself is the atomic above, so nothing is guarded.
  Mutex mutex_;
  CondVar cv_;
};

}  // namespace bcast

#endif  // BCAST_EXEC_THREAD_POOL_H_
