// Work-stealing thread pool: the execution substrate of the parallel search
// engine (exec/parallel_search.h) and the batch planner (core/PlanMany).
//
// Each worker owns a deque. The owner pushes and pops at the back (LIFO, so a
// worker descends depth-first into the subtree it just split, keeping its
// working set cache-hot); idle workers steal from the *front* of a victim's
// deque (FIFO, so thieves take the oldest — and for branch-and-bound the
// largest — subtasks, which amortizes the steal over the most work). External
// (non-worker) submitters round-robin across the deques.
//
// The pool knows nothing about search: tasks are plain std::function<void()>.
// Determinism therefore cannot come from the executor — callers that need
// order-independent results (ParallelSearch) must make every task outcome
// commutative. Destruction drains: queued tasks (including tasks submitted by
// running tasks) all execute before the workers join.
//
// Failure model: a TaskGroup task that throws does not terminate the process —
// the group wrapper catches the exception, converts it to a Status, and
// TaskGroup::Wait() returns the first such error (the remaining tasks still
// run). Raw Submit() tasks have no waiter to report to, so a throwing one is
// swallowed by a last-resort catch in the worker loop and counted in
// `pool.task_exceptions`. An optional per-pool TaskHook (fault injection,
// tracing) runs before every group task under the same exception contract.

#ifndef BCAST_EXEC_THREAD_POOL_H_
#define BCAST_EXEC_THREAD_POOL_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "exec/cancel.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace bcast {

class ThreadPool {
 public:
  /// Called with the task's pool-wide index before each TaskGroup task runs
  /// (on the worker thread). May throw: the exception is handled exactly like
  /// one thrown by the task itself. Not invoked for raw Submit() tasks.
  using TaskHook = std::function<void(uint64_t task_index)>;

  /// Spawns `num_threads` workers (checked >= 1). Use HardwareConcurrency()
  /// to size the pool to the machine. `task_hook` (optional) intercepts every
  /// TaskGroup task — the chaos-testing seam (fault/task_fault.h).
  explicit ThreadPool(int num_threads, TaskHook task_hook = nullptr);

  /// Drains every queued task, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues a task. Callable from any thread, including from inside a
  /// running task (the task lands on the submitting worker's own deque).
  void Submit(std::function<void()> task);

  /// std::thread::hardware_concurrency(), clamped to >= 1 (the standard
  /// allows 0 for "unknown").
  static int HardwareConcurrency();

  /// Index of the calling worker within this pool, or -1 for foreign threads.
  /// Exposed for tests and for callers that shard per-worker state.
  int CurrentWorkerIndex() const;

  /// Total tasks stolen from another worker's deque (telemetry; approximate
  /// ordering only, exact count).
  uint64_t steal_count() const { return steals_.load(std::memory_order_relaxed); }

  /// Steal scans that came up empty across every victim (a measure of how
  /// often workers spin hungry; telemetry, exact count).
  uint64_t failed_steal_count() const {
    return failed_steals_.load(std::memory_order_relaxed);
  }

  /// Raw Submit() tasks whose exception was swallowed by the worker-loop
  /// safety net (TaskGroup tasks report through Wait() instead).
  uint64_t task_exception_count() const {
    return task_exceptions_.load(std::memory_order_relaxed);
  }

  /// The per-task hook installed at construction (may be null).
  const TaskHook& task_hook() const { return task_hook_; }

  /// Next pool-wide task index (monotone from 0). TaskGroup draws one per
  /// task so the hook sees a deterministic index sequence per pool.
  uint64_t NextTaskIndex() {
    return next_task_index_.fetch_add(1, std::memory_order_relaxed);
  }

 private:
  struct Worker {
    Mutex mutex;
    std::deque<std::function<void()>> tasks BCAST_GUARDED_BY(mutex);
    // Owner-thread tallies: written only by the worker thread that owns this
    // slot, read by the destructor after join (the join is the sync point),
    // so they stay plain fields — no atomic traffic on the task hot path.
    // Join-synchronized, not lock-guarded: deliberately unannotated.
    uint64_t tasks_run = 0;
    uint64_t busy_ns = 0;
  };

  void WorkerLoop(int index);

  // Runs `task`, swallowing (and counting) any exception that escapes it.
  // The last line of defense for raw Submit() tasks; group tasks never throw
  // out of their wrapper.
  void RunGuarded(const std::function<void()>& task);

  // Pops one task for worker `self` (own back first, then steal a front).
  // Returns an empty function if nothing is runnable.
  std::function<void()> TakeTask(int self);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  // Queued-but-not-started task count; guards the idle wait.
  std::atomic<uint64_t> pending_{0};
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> next_external_{0};  // round-robin cursor
  std::atomic<uint64_t> steals_{0};
  std::atomic<uint64_t> failed_steals_{0};
  std::atomic<uint64_t> task_exceptions_{0};
  std::atomic<uint64_t> next_task_index_{0};
  TaskHook task_hook_;          // fixed at construction; called concurrently
  bool record_timing_ = false;  // fixed at construction (metrics installed?)
  // idle_mutex_ guards no fields — it exists to serialize the sleepers'
  // predicate checks (over the atomics above) with Submit()'s notify and the
  // destructor's stop flip, closing the check-then-sleep race.
  Mutex idle_mutex_;
  CondVar idle_cv_;
};

/// Completion tracking for a batch of pool tasks. Run() wraps the task with
/// an outstanding-count decrement; Wait() blocks until every task that was
/// Run() — including tasks Run() from inside other tasks — has finished.
/// Wait() must be called from a non-worker thread (a waiting worker would
/// deadlock a single-threaded pool).
///
/// Exceptions thrown by a group task (or by the pool's TaskHook) are caught
/// in the wrapper and surfaced as the Status returned by Wait() — the first
/// error wins, later ones only bump `pool.group_task_errors`. With a
/// CancelToken, tasks that dequeue after Cancel() skip their body entirely
/// (they still count as finished), so a cancelled batch drains quickly.
class TaskGroup {
 public:
  /// `cancel` (optional, not owned) must outlive the group.
  explicit TaskGroup(ThreadPool* pool, const CancelToken* cancel = nullptr);

  /// Schedules `task` on the pool as part of this group.
  void Run(std::function<void()> task);

  /// Blocks until the group is empty. Returns OkStatus() if every task ran to
  /// completion, otherwise the first task/hook exception converted to a
  /// kInternal Status. Deliberately not [[nodiscard]]: callers whose tasks
  /// report failure out-of-band (the search engine's abort latch) may ignore
  /// it.
  Status Wait();

 private:
  // Records the first task failure (later ones are counted only).
  void RecordError(Status status);

  ThreadPool* pool_;
  const CancelToken* cancel_;
  std::atomic<uint64_t> outstanding_{0};
  // Pairs the last task's decrement-and-notify with Wait()'s predicate
  // check; the count itself is the atomic above. first_error_ is the one
  // genuinely guarded field.
  Mutex mutex_;
  CondVar cv_;
  Status first_error_ BCAST_GUARDED_BY(mutex_);
};

}  // namespace bcast

#endif  // BCAST_EXEC_THREAD_POOL_H_
