// Adaptive broadcast server simulation (paper future-work #1, end to end).
//
// Runs a server over many broadcast cycles against a *drifting* true access
// distribution the server never sees directly. Each cycle the server serves
// weighted client queries from the active schedule, feeds the observed
// requests into a FrequencyEstimator, and (optionally) replans the next
// cycle's index tree and allocation from the estimates. The report compares,
// per cycle, the realized average data wait against an oracle that replans
// from the true weights — quantifying both the cost of estimation noise and
// the cost of not adapting at all (replan_every = 0).

#ifndef BCAST_SIM_SERVER_SIM_H_
#define BCAST_SIM_SERVER_SIM_H_

#include <functional>
#include <vector>

#include "core/planner.h"
#include "fault/fault_model.h"
#include "fault/task_fault.h"
#include "obs/clock.h"
#include "util/rng.h"
#include "util/status.h"

namespace bcast::obs {
class TelemetryPipeline;
}  // namespace bcast::obs

namespace bcast {

struct AdaptiveServerOptions {
  int num_channels = 2;
  int num_cycles = 20;
  int queries_per_cycle = 2000;
  /// Exponential decay of the frequency estimator per cycle.
  double estimator_decay = 0.5;
  /// Allocation strategy used by both the server and the oracle.
  PlanStrategy strategy = PlanStrategy::kSorting;
  /// Replan every R cycles; 0 = plan once from the initial estimates and
  /// never adapt (the static strawman).
  int replan_every = 1;
  /// Index fanout for the rebuilt alphabetic tree.
  int index_fanout = 4;
  /// Downlink fault model: each served query's data bucket is subject to
  /// loss, and an unusable bucket is retried on the next cycle (same slot one
  /// cycle later), inflating the realized wait by one cycle per retry. The
  /// default is a lossless medium; the uplink (request stream feeding the
  /// estimator) is always assumed reliable.
  FaultModel faults;
  /// Per-query delivery attempts (1 + retries) before the query counts as
  /// undelivered.
  int max_delivery_attempts = 8;
  /// Worker threads for the per-cycle planning batch (the server's due replan
  /// and the oracle's every-cycle replan go through core/PlanMany together).
  /// 1 = plan sequentially, 0 = hardware concurrency. Planning is
  /// deterministic, so the report is identical for every value.
  int planner_threads = 1;
  /// Warm-start each due replan: re-cost the previous cycle's slot sequence
  /// under the new tree (when it is still feasible for it) and seed the
  /// exact search's incumbent with min(heuristic, previous) via
  /// OptimalOptions::SeedIncumbent::kPrevious. Seeding is a pure upper
  /// bound, so the report is byte-identical with this on or off — it only
  /// shrinks the searched tree (see search.seed.* / search.*.bound_* in the
  /// metrics). Only plans that dispatch to the exact search are affected.
  bool warm_start_replans = true;
  /// Deterministic per-replan expansion budget for OPTIMAL plans (0 = none).
  /// Exhaustion yields an anytime incumbent, byte-identical across
  /// planner_threads values (see alloc/search_budget.h).
  uint64_t plan_budget_expansions = 0;
  /// Wall-clock planning deadline per replan, nanoseconds (0 = none). Not
  /// deterministic across runs or thread counts — prefer the expansion
  /// budget when reproducibility matters.
  uint64_t plan_deadline_ns = 0;
  /// Clock the deadline is measured on; null = the monotonic wall clock.
  /// Tests inject an obs::ManualClock to make deadline behavior
  /// deterministic.
  obs::Clock* plan_clock = nullptr;
  /// Degradation ceiling handed to the planner (ladder stages 2-3:
  /// anytime incumbent, then sorting heuristic).
  DegradePolicy degrade = DegradePolicy::kHeuristic;
  /// Ladder stage 4: when a due replan fails outright, keep serving the
  /// previous cycle's plan (provenance kStalePrevious) and back off
  /// exponentially before retrying, instead of failing the run. false =
  /// propagate the planning error.
  bool allow_stale = true;
  /// Chaos testing: injects deterministic failures/stalls into the planning
  /// pool's tasks (fault/task_fault.h). Only pooled plans are exposed
  /// (planner_threads >= 2 and a batch of >= 2 requests); a killed oracle
  /// task is retried inline so the report baseline survives.
  TaskFaultOptions task_faults;
  /// Streaming telemetry (obs/stream.h): when set, each cycle stages the
  /// realized/oracle waits, estimation error, delivery rate and the served
  /// degradation rung, then closes one tick keyed by the cycle ordinal
  /// (never wall clock). The pipeline is Finish()ed on EVERY exit path —
  /// "ok", "degraded" (stale serves / backoff skips) or "error" — so the
  /// stream is never silently truncated. Purely observational: the report
  /// and every RNG draw are byte-identical with this on or off.
  obs::TelemetryPipeline* telemetry = nullptr;
};

/// Per-cycle outcome.
struct CycleStats {
  int cycle = 0;
  /// Mean data wait realized by this cycle's *delivered* queries on the
  /// active schedule. A cycle in which every query missed its retry budget
  /// delivered nothing and has no realized wait to report: this field is
  /// then NaN — deliberately not 0.0 (which would read as "instant
  /// delivery" exactly when the downlink was at its worst) and not +inf
  /// (which would poison any downstream average). NaN cycles are excluded
  /// from AdaptiveServerReport::mean_realized; delivery_success_rate (0.0
  /// for such a cycle) is the signal that carries the outage instead.
  /// Consumers reducing over cycles must skip NaN entries (std::isnan),
  /// mirroring what RunAdaptiveServer itself does.
  double realized_data_wait = 0.0;
  /// Expected data wait of an oracle plan built from the true weights.
  double oracle_data_wait = 0.0;
  /// Normalized estimator error against the true distribution.
  double estimation_error = 0.0;
  /// Fraction of this cycle's queries whose data bucket was delivered within
  /// the retry budget (1.0 on a lossless downlink).
  double delivery_success_rate = 1.0;
  /// Provenance of the plan on air this cycle; kStalePrevious while a failed
  /// replan leaves the previous cycle's plan serving (ladder stage 4).
  PlanProvenance served_provenance = PlanProvenance::kExact;
};

struct AdaptiveServerReport {
  std::vector<CycleStats> cycles;
  /// Mean realized data wait over cycles that delivered at least one query.
  /// Undelivered-only cycles (CycleStats::realized_data_wait == NaN) are
  /// excluded from both the numerator and the denominator — they carry no
  /// wait observation, and averaging in any placeholder would bias the
  /// metric in the direction of the placeholder. NaN when *no* cycle
  /// delivered anything (0/0: the mean is undefined, and NaN makes that
  /// unmissable where a silent 0.0 would look like a perfect run).
  double mean_realized = 0.0;
  double mean_oracle = 0.0;
  /// Mean per-cycle delivery success (1.0 on a lossless downlink).
  double mean_delivery_success = 1.0;
  /// Cycles served from a stale (previous-cycle) plan after a failed replan.
  int stale_serves = 0;
  /// Due replans skipped while backing off after consecutive failures.
  int backoff_skips = 0;
};

/// Mutates the true weights between cycles (popularity drift).
using DriftFn = std::function<void(int cycle, std::vector<double>* weights)>;

/// Runs the loop. `initial_true_weights[i]` is item i's true request rate;
/// items keep their catalog (key) order across replans. Errors propagate
/// from planning.
Result<AdaptiveServerReport> RunAdaptiveServer(
    std::vector<double> initial_true_weights, const DriftFn& drift, Rng* rng,
    const AdaptiveServerOptions& options);

}  // namespace bcast

#endif  // BCAST_SIM_SERVER_SIM_H_
