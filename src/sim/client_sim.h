// Monte-Carlo mobile-client simulator.
//
// Replays the access protocol of Section 2.1 against a materialized broadcast
// cycle: a client poses a query at a uniformly random time, listens on the
// first channel for the pointer to the next cycle start (probe wait), then
// follows (channel, offset) index pointers — dozing in between — until the
// requested data bucket arrives (data wait). The simulator is the
// end-to-end check that the analytic cost model and the pointer
// materialization agree: the empirical mean data wait converges to formula
// (1), and the empirical tuning time to the weighted path length.

#ifndef BCAST_SIM_CLIENT_SIM_H_
#define BCAST_SIM_CLIENT_SIM_H_

#include <cstdint>

#include "broadcast/pointers.h"
#include "broadcast/schedule.h"
#include "tree/index_tree.h"
#include "util/rng.h"
#include "util/status.h"
#include "workload/query_sampler.h"

namespace bcast {

struct SimOptions {
  uint64_t num_queries = 100'000;
};

/// Aggregates over simulated queries. Waits are in buckets (slot times).
struct SimReport {
  uint64_t num_queries = 0;
  double mean_probe_wait = 0.0;   // time to the next cycle start (~ cycle/2)
  double mean_data_wait = 0.0;    // cycle start -> data bucket downloaded
  double mean_access_time = 0.0;  // probe + data wait
  double mean_tuning_time = 0.0;  // buckets actively listened to
  double mean_switches = 0.0;     // channel hops along the pointer path
  /// Fraction of the access time spent listening (1 - doze ratio).
  double listen_fraction = 0.0;
};

/// Simulates clients against one (tree, schedule) broadcast program.
class ClientSimulator {
 public:
  /// Errors if the schedule is infeasible for the tree.
  static Result<ClientSimulator> Create(const IndexTree& tree,
                                        const BroadcastSchedule& schedule);

  /// Runs `options.num_queries` independent client accesses.
  SimReport Run(Rng* rng, const SimOptions& options) const;

 private:
  ClientSimulator(const IndexTree& tree, const BroadcastSchedule& schedule,
                  PointerTable pointers);

  const IndexTree& tree_;
  const BroadcastSchedule& schedule_;
  PointerTable pointers_;
  QuerySampler sampler_;
};

}  // namespace bcast

#endif  // BCAST_SIM_CLIENT_SIM_H_
