// Monte-Carlo mobile-client simulator.
//
// Replays the access protocol of Section 2.1 against a materialized broadcast
// cycle: a client poses a query at a uniformly random time, listens on the
// first channel for the pointer to the next cycle start (probe wait), then
// follows (channel, offset) index pointers — dozing in between — until the
// requested data bucket arrives (data wait). The simulator is the
// end-to-end check that the analytic cost model and the pointer
// materialization agree: the empirical mean data wait converges to formula
// (1), and the empirical tuning time to the weighted path length.
//
// The medium may be faulty (SimOptions::faults): buckets are lost or
// detectably corrupted per a FaultModel, and the client degrades gracefully
// instead of silently failing:
//   1. retry — an unusable bucket is re-read at the node's next broadcast
//      occurrence (the same slot one cycle later, or an earlier replica when
//      the program was built with index replication), up to
//      RecoveryOptions::max_retries_per_hop failures per hop;
//   2. backoff — a hop that exhausts its retries abandons the pointer chain,
//      dozes to the next cycle start and restarts the descent from the root,
//      up to max_cycle_restarts times;
//   3. sequential scan — as a last resort the client scans the cycle channel
//      by channel, listening to every bucket until the target arrives intact
//      (max_scan_passes passes over all channels), trading energy for
//      delivery.
// A query that exhausts every fallback is reported as failed, never as an
// optimistic wait.
//
// Determinism: query sampling and arrival times draw from the caller's Rng;
// fault draws come from its RngStream::kFault substream. With all loss
// probabilities zero the fault substream is never touched and the simulation
// is bit-identical to the lossless simulator under the same seed.

#ifndef BCAST_SIM_CLIENT_SIM_H_
#define BCAST_SIM_CLIENT_SIM_H_

#include <cstdint>
#include <vector>

#include "alloc/replication.h"
#include "broadcast/schedule.h"
#include "fault/fault_model.h"
#include "tree/index_tree.h"
#include "util/rng.h"
#include "util/status.h"
#include "workload/query_sampler.h"

namespace bcast {

/// Bounds on the client's recovery ladder under a faulty medium.
struct RecoveryOptions {
  /// Failed reads tolerated per pointer hop before the chain is abandoned.
  int max_retries_per_hop = 3;
  /// Root restarts (doze to next cycle start, descend again) before the
  /// client stops trusting the index.
  int max_cycle_restarts = 2;
  /// Full passes over all channels in the last-resort sequential scan.
  int max_scan_passes = 2;
};

struct SimOptions {
  uint64_t num_queries = 100'000;
  /// Medium fault model. Default: lossless (the paper's assumption).
  FaultModel faults;
  RecoveryOptions recovery;
};

/// Aggregates over simulated queries. Waits are in buckets (slot times).
/// Means and percentiles are taken over *successful* accesses; failures are
/// only visible through num_succeeded / success_rate.
struct SimReport {
  uint64_t num_queries = 0;
  double mean_probe_wait = 0.0;   // time to the next cycle start (~ cycle/2)
  double mean_data_wait = 0.0;    // cycle start -> data bucket downloaded
  double mean_access_time = 0.0;  // probe + data wait
  double mean_tuning_time = 0.0;  // buckets actively listened to
  double mean_switches = 0.0;     // channel hops along the pointer path
  /// Fraction of the access time spent listening (1 - doze ratio).
  double listen_fraction = 0.0;

  // --- delivery outcome (trivial on a lossless medium) --------------------
  uint64_t num_succeeded = 0;
  /// num_succeeded / num_queries (1.0 when the medium is lossless).
  double success_rate = 0.0;

  // --- fault and recovery telemetry (all zero on a lossless medium) -------
  uint64_t buckets_lost = 0;       // listened slots with nothing received
  uint64_t buckets_corrupted = 0;  // listened slots failing the checksum
  uint64_t retries = 0;            // re-reads at a later occurrence
  uint64_t cycle_restarts = 0;     // backoffs to a cycle start
  uint64_t sequential_scans = 0;   // queries that degraded to a full scan

  // --- access-time tail over successful queries (nearest-rank) ------------
  double p50_access_time = 0.0;
  double p95_access_time = 0.0;
  double p99_access_time = 0.0;

  // --- reproducibility ----------------------------------------------------
  /// Engine draws consumed from the caller's Rng (query sampling + arrivals)
  /// and from its kFault substream. Together with the seed these pin the
  /// exact random prefix a run consumed, so a report is replayable.
  uint64_t rng_query_draws = 0;
  uint64_t rng_fault_draws = 0;
};

/// Simulates clients against one broadcast program — either a plain
/// (tree, schedule) cycle or a replicated program whose index replicas the
/// recovery protocol exploits.
class ClientSimulator {
 public:
  /// Errors if the schedule is infeasible for the tree.
  static Result<ClientSimulator> Create(const IndexTree& tree,
                                        const BroadcastSchedule& schedule);

  /// Simulates against a replicated program (index replicas shorten both the
  /// probe wait and the recovery retries). Errors if the program fails
  /// ValidateReplicatedProgram.
  static Result<ClientSimulator> Create(const IndexTree& tree,
                                        const ReplicatedProgram& program);

  /// Runs `options.num_queries` independent client accesses.
  SimReport Run(Rng* rng, const SimOptions& options) const;

 private:
  /// One broadcast occurrence of a node within the cycle.
  struct Occurrence {
    int slot = -1;
    int channel = -1;
  };

  /// Outcome of one simulated access.
  struct QueryOutcome {
    bool success = false;
    double probe_wait = 0.0;
    double data_wait = 0.0;
    int tuning = 0;
    int switches = 0;
  };

  ClientSimulator(const IndexTree& tree, bool replicated);

  /// Replays one access. `medium` is null on a lossless run (no fault
  /// draws). Fault/recovery counters accumulate into `report`.
  QueryOutcome AccessOnce(NodeId target, double arrival, FaultProcess* medium,
                          const RecoveryOptions& recovery,
                          SimReport* report) const;

  /// Earliest occurrence of `node` whose slot start is >= `time` under the
  /// circular broadcast (absolute slot, channel).
  Occurrence NextOccurrence(NodeId node, int64_t time, int64_t* abs_slot) const;

  int64_t NextCycleStart(int64_t time) const;

  const IndexTree& tree_;
  QuerySampler sampler_;
  bool replicated_;
  int num_channels_ = 0;
  int cycle_length_ = 0;
  /// All within-cycle occurrences per node, sorted by slot (size 1 unless the
  /// program replicates the node).
  std::vector<std::vector<Occurrence>> occurrences_;
  /// grid_[channel][slot]: the on-air bucket, for the sequential-scan
  /// fallback (kInvalidNode for empty buckets).
  std::vector<std::vector<NodeId>> grid_;
};

}  // namespace bcast

#endif  // BCAST_SIM_CLIENT_SIM_H_
