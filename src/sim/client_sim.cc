#include "sim/client_sim.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "broadcast/pointers.h"
#include "obs/obs.h"
#include "util/check.h"

namespace bcast {

namespace {

void RecordFault(BucketOutcome got, SimReport* report) {
  if (got == BucketOutcome::kLost) {
    ++report->buckets_lost;
  } else if (got == BucketOutcome::kCorrupted) {
    ++report->buckets_corrupted;
  }
}

}  // namespace

Result<ClientSimulator> ClientSimulator::Create(
    const IndexTree& tree, const BroadcastSchedule& schedule) {
  // Materialization both validates feasibility and yields the pointer table
  // the grid is cross-checked against below.
  auto pointers = MaterializePointers(tree, schedule);
  if (!pointers.ok()) return pointers.status();

  ClientSimulator sim(tree, /*replicated=*/false);
  sim.num_channels_ = schedule.num_channels();
  sim.cycle_length_ = schedule.num_slots();
  sim.occurrences_.assign(static_cast<size_t>(tree.num_nodes()), {});
  for (NodeId id = 0; id < tree.num_nodes(); ++id) {
    SlotRef ref = schedule.placement(id);
    sim.occurrences_[static_cast<size_t>(id)].push_back({ref.slot, ref.channel});
  }
  sim.grid_.assign(static_cast<size_t>(sim.num_channels_),
                   std::vector<NodeId>(static_cast<size_t>(sim.cycle_length_),
                                       kInvalidNode));
  for (int c = 0; c < sim.num_channels_; ++c) {
    for (int s = 0; s < sim.cycle_length_; ++s) {
      sim.grid_[static_cast<size_t>(c)][static_cast<size_t>(s)] =
          schedule.at(c, s);
    }
  }
  // Every advertised pointer must land exactly on its target's bucket; a
  // mismatch means the materialization and the grid disagree (memory
  // corruption or a refactoring bug), which no simulation should paper over.
  for (NodeId id = 0; id < tree.num_nodes(); ++id) {
    SlotRef parent_ref = schedule.placement(id);
    for (const BucketPointer& ptr :
         pointers->pointers[static_cast<size_t>(id)]) {
      SlotRef target_ref = schedule.placement(ptr.target);
      BCAST_CHECK_EQ(parent_ref.slot + ptr.offset, target_ref.slot)
          << "pointer to '" << tree.label(ptr.target) << "' misses its bucket";
      BCAST_CHECK_EQ(ptr.channel, target_ref.channel);
    }
  }
  return sim;
}

Result<ClientSimulator> ClientSimulator::Create(
    const IndexTree& tree, const ReplicatedProgram& program) {
  BCAST_RETURN_IF_ERROR(ValidateReplicatedProgram(tree, program));

  ClientSimulator sim(tree, /*replicated=*/true);
  sim.num_channels_ = program.num_channels;
  sim.cycle_length_ = program.cycle_length;
  sim.grid_ = program.grid;
  sim.occurrences_.assign(static_cast<size_t>(tree.num_nodes()), {});
  // Slot-major scan keeps each occurrence list sorted by slot.
  for (int s = 0; s < sim.cycle_length_; ++s) {
    for (int c = 0; c < sim.num_channels_; ++c) {
      NodeId node = sim.grid_[static_cast<size_t>(c)][static_cast<size_t>(s)];
      if (node == kInvalidNode) continue;
      sim.occurrences_[static_cast<size_t>(node)].push_back({s, c});
    }
  }
  return sim;
}

ClientSimulator::ClientSimulator(const IndexTree& tree, bool replicated)
    : tree_(tree), sampler_(tree), replicated_(replicated) {}

ClientSimulator::Occurrence ClientSimulator::NextOccurrence(
    NodeId node, int64_t time, int64_t* abs_slot) const {
  const int64_t cycle = cycle_length_;
  const int64_t base = (time / cycle) * cycle;
  int64_t best = std::numeric_limits<int64_t>::max();
  Occurrence best_occ;
  for (const Occurrence& occ : occurrences_[static_cast<size_t>(node)]) {
    int64_t abs = base + occ.slot;
    if (abs < time) abs += cycle;
    if (abs < best) {
      best = abs;
      best_occ = occ;
    }
  }
  BCAST_CHECK(best_occ.slot >= 0) << "node '" << tree_.label(node)
                                  << "' never airs";
  *abs_slot = best;
  return best_occ;
}

int64_t ClientSimulator::NextCycleStart(int64_t time) const {
  const int64_t cycle = cycle_length_;
  return ((time + cycle - 1) / cycle) * cycle;
}

ClientSimulator::QueryOutcome ClientSimulator::AccessOnce(
    NodeId target, double arrival, FaultProcess* medium,
    const RecoveryOptions& recovery, SimReport* report) const {
  QueryOutcome out;
  const int64_t cycle = cycle_length_;
  int last_channel = 0;  // the client starts on the first channel

  // Phase 1: probe — read any first-channel bucket (each carries the pointer
  // that locates the root). On a fault the next bucket of the channel is
  // tried; the budget bounds a fully dead medium.
  int64_t probe_slot = static_cast<int64_t>(arrival);
  const int64_t probe_limit =
      probe_slot + (static_cast<int64_t>(recovery.max_cycle_restarts) + 1) *
                       cycle;
  bool probe_ok = false;
  for (bool first = true; probe_slot <= probe_limit; ++probe_slot) {
    if (!first) ++report->retries;
    first = false;
    ++out.tuning;
    BucketOutcome got =
        medium ? medium->Observe(0, probe_slot) : BucketOutcome::kOk;
    if (got == BucketOutcome::kOk) {
      probe_ok = true;
      break;
    }
    RecordFault(got, report);
  }
  // Where the pointer walk starts. A plain client dozes to the advertised
  // next cycle start; a replicated program's probe bucket points at the next
  // root occurrence directly, so the walk starts immediately. A client whose
  // probe budget died entirely skips the index and degrades straight to the
  // sequential scan (the scan needs no pointers).
  int64_t p;
  double probe_ref = -1.0;  // instant the data wait is measured from
  if (!probe_ok) {
    p = probe_slot;
  } else if (replicated_) {
    p = probe_slot + 1;  // probe_ref fixed at the first successful root read
  } else {
    p = (probe_slot / cycle + 1) * cycle;
    probe_ref = static_cast<double>(p);
  }

  // Phase 2: descend the pointer chain root -> ... -> target, retrying each
  // unusable bucket at the node's next occurrence, backing off to the next
  // cycle start when a hop exhausts its retries.
  std::vector<NodeId> path = tree_.AncestorsOf(target);
  path.push_back(target);

  int64_t finish = -1;
  int restarts = 0;
  size_t hop = 0;
  // Last slot the medium was observed at during the descent. Failed retries
  // push it past `p` (the slot after the last *successful* read), and the
  // fault process requires per-channel observations to move forward in time,
  // so every later phase must resume at or after this slot.
  int64_t last_abs = p - 1;
  bool walking = probe_ok;
  while (walking && finish < 0) {
    NodeId node = path[hop];
    int failures = 0;
    int64_t t = p;
    bool advanced = false;
    while (true) {
      int64_t abs = 0;
      Occurrence occ = NextOccurrence(node, t, &abs);
      last_abs = abs;
      ++out.tuning;
      if (occ.channel != last_channel) {
        ++out.switches;
        last_channel = occ.channel;
      }
      BucketOutcome got =
          medium ? medium->Observe(occ.channel, abs) : BucketOutcome::kOk;
      if (got == BucketOutcome::kOk) {
        p = abs + 1;
        if (replicated_ && hop == 0 && probe_ref < 0.0) {
          probe_ref = static_cast<double>(p);
        }
        ++hop;
        if (hop == path.size()) finish = p;
        advanced = true;
        break;
      }
      RecordFault(got, report);
      ++failures;
      if (failures > recovery.max_retries_per_hop) break;
      ++report->retries;
      t = abs + 1;  // the node's next occurrence (a replica or next cycle)
    }
    if (advanced) continue;

    if (restarts < recovery.max_cycle_restarts) {
      // Backoff: the chain is broken; doze to the next cycle start and
      // restart the descent from the root.
      ++restarts;
      ++report->cycle_restarts;
      p = NextCycleStart(last_abs + 1);
      hop = 0;
      continue;
    }
    walking = false;  // pointers exhausted: degrade to a sequential scan
  }

  // Phase 3: graceful degradation — scan the cycle channel by channel,
  // listening to every bucket, until the target arrives intact.
  int64_t scan_start = -1;
  if (finish < 0) {
    ++report->sequential_scans;
    scan_start = NextCycleStart(std::max(p, last_abs + 1));
    for (int pass = 0; pass < recovery.max_scan_passes && finish < 0; ++pass) {
      for (int c = 0; c < num_channels_ && finish < 0; ++c) {
        if (c != last_channel) {
          ++out.switches;
          last_channel = c;
        }
        const int64_t block =
            scan_start +
            (static_cast<int64_t>(pass) * num_channels_ + c) * cycle;
        for (int s = 0; s < cycle_length_; ++s) {
          const int64_t abs = block + s;
          ++out.tuning;
          BucketOutcome got =
              medium ? medium->Observe(c, abs) : BucketOutcome::kOk;
          if (got != BucketOutcome::kOk) {
            RecordFault(got, report);
            continue;
          }
          if (grid_[static_cast<size_t>(c)]
                   [static_cast<size_t>(abs % cycle)] == target) {
            finish = abs + 1;
            break;
          }
        }
      }
    }
    if (finish < 0) return out;  // every fallback exhausted: report failure
  }

  if (probe_ref < 0.0) {
    // The index was never read intact (the scan delivered the data); anchor
    // the probe wait at the probe bucket's end, or at the scan start when
    // even the probe died.
    probe_ref = probe_ok ? static_cast<double>(probe_slot + 1)
                         : static_cast<double>(scan_start);
  }
  out.success = true;
  out.probe_wait = probe_ref - arrival;
  out.data_wait = static_cast<double>(finish) - probe_ref;
  return out;
}

SimReport ClientSimulator::Run(Rng* rng, const SimOptions& options) const {
  obs::ScopedSpan span("sim.run");
  obs::ScopedTimer timer(obs::GetHistogram("sim.run_ns"));
  SimReport report;
  report.num_queries = options.num_queries;
  const double cycle = static_cast<double>(cycle_length_);
  const uint64_t query_draws_before = rng->draw_count();

  // Fault draws live on their own substream: enabling loss never perturbs
  // query sampling, and a zero-loss run makes no fault draws at all — so it
  // is bit-identical to the lossless simulator under the same seed.
  Rng fault_rng = rng->Substream(RngStream::kFault);
  const bool faulty = options.faults.active();

  double probe_sum = 0.0, data_sum = 0.0, tuning_sum = 0.0, switch_sum = 0.0;
  std::vector<double> access_times;
  access_times.reserve(options.num_queries);
  for (uint64_t q = 0; q < options.num_queries; ++q) {
    NodeId target = sampler_.Sample(rng);
    double arrival = rng->UniformDouble(0.0, cycle);

    // Each query is an independent client under an independent realization
    // of the medium (the Gilbert–Elliott chains start from stationarity).
    FaultProcess medium(options.faults, &fault_rng);
    QueryOutcome out = AccessOnce(target, arrival, faulty ? &medium : nullptr,
                                  options.recovery, &report);
    if (!out.success) continue;
    ++report.num_succeeded;
    probe_sum += out.probe_wait;
    data_sum += out.data_wait;
    tuning_sum += static_cast<double>(out.tuning);
    switch_sum += static_cast<double>(out.switches);
    access_times.push_back(out.probe_wait + out.data_wait);
  }

  report.success_rate =
      options.num_queries > 0
          ? static_cast<double>(report.num_succeeded) /
                static_cast<double>(options.num_queries)
          : 0.0;
  if (report.num_succeeded > 0) {
    const double n = static_cast<double>(report.num_succeeded);
    report.mean_probe_wait = probe_sum / n;
    report.mean_data_wait = data_sum / n;
    report.mean_access_time = (probe_sum + data_sum) / n;
    report.mean_tuning_time = tuning_sum / n;
    report.mean_switches = switch_sum / n;
    report.listen_fraction =
        report.mean_access_time > 0.0
            ? report.mean_tuning_time / report.mean_access_time
            : 0.0;

    std::sort(access_times.begin(), access_times.end());
    auto nearest_rank = [&access_times](double quantile) {
      size_t rank = static_cast<size_t>(
          std::ceil(quantile * static_cast<double>(access_times.size())));
      if (rank > 0) --rank;
      if (rank >= access_times.size()) rank = access_times.size() - 1;
      return access_times[rank];
    };
    report.p50_access_time = nearest_rank(0.50);
    report.p95_access_time = nearest_rank(0.95);
    report.p99_access_time = nearest_rank(0.99);
  }
  report.rng_query_draws = rng->draw_count() - query_draws_before;
  report.rng_fault_draws = fault_rng.draw_count();

  if (obs::MetricsEnabled()) {
    obs::GetCounter("sim.queries").Add(report.num_queries);
    obs::GetCounter("sim.succeeded").Add(report.num_succeeded);
    obs::GetCounter("sim.retries").Add(report.retries);
    obs::GetCounter("sim.cycle_restarts").Add(report.cycle_restarts);
    obs::GetCounter("sim.sequential_scans").Add(report.sequential_scans);
    obs::GetCounter("sim.buckets_lost").Add(report.buckets_lost);
    obs::GetCounter("sim.buckets_corrupted").Add(report.buckets_corrupted);
    obs::GetCounter("rng.draws.query").Add(report.rng_query_draws);
    obs::GetCounter("rng.draws.fault").Add(report.rng_fault_draws);
  }
  return report;
}

}  // namespace bcast
