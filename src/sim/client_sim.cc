#include "sim/client_sim.h"

#include <vector>

#include "util/check.h"

namespace bcast {

Result<ClientSimulator> ClientSimulator::Create(
    const IndexTree& tree, const BroadcastSchedule& schedule) {
  auto pointers = MaterializePointers(tree, schedule);
  if (!pointers.ok()) return pointers.status();
  return ClientSimulator(tree, schedule, std::move(pointers).value());
}

ClientSimulator::ClientSimulator(const IndexTree& tree,
                                 const BroadcastSchedule& schedule,
                                 PointerTable pointers)
    : tree_(tree),
      schedule_(schedule),
      pointers_(std::move(pointers)),
      sampler_(tree) {}

SimReport ClientSimulator::Run(Rng* rng, const SimOptions& options) const {
  SimReport report;
  report.num_queries = options.num_queries;
  const double cycle = static_cast<double>(pointers_.cycle_length);

  double probe_sum = 0.0, data_sum = 0.0, tuning_sum = 0.0, switch_sum = 0.0;
  for (uint64_t q = 0; q < options.num_queries; ++q) {
    NodeId target = sampler_.Sample(rng);

    // The client tunes in at a uniform time within the cycle, listens to the
    // current channel-1 bucket to learn the next-cycle pointer, and dozes
    // until the cycle starts.
    double arrival = rng->UniformDouble(0.0, cycle);
    double probe_wait = cycle - arrival;

    // From the cycle start, follow index pointers root -> ... -> target.
    // The path is recovered from the tree; the simulator verifies each hop
    // against the materialized pointer table.
    std::vector<NodeId> path = tree_.AncestorsOf(target);
    path.push_back(target);
    int tuning = 0;
    int switches = 0;
    int last_channel = 0;  // the client starts on the first channel
    int last_slot = -1;
    for (size_t i = 0; i < path.size(); ++i) {
      NodeId node = path[i];
      SlotRef ref = schedule_.placement(node);
      BCAST_CHECK_GT(ref.slot, last_slot)
          << "pointer chain moved backwards at '" << tree_.label(node) << "'";
      if (i > 0) {
        // Check the parent's pointer table actually advertises this hop.
        NodeId parent = path[i - 1];
        bool found = false;
        for (const BucketPointer& ptr :
             pointers_.pointers[static_cast<size_t>(parent)]) {
          if (ptr.target == node) {
            SlotRef parent_ref = schedule_.placement(parent);
            BCAST_CHECK_EQ(parent_ref.slot + ptr.offset, ref.slot);
            BCAST_CHECK_EQ(ptr.channel, ref.channel);
            found = true;
            break;
          }
        }
        BCAST_CHECK(found) << "missing pointer to '" << tree_.label(node) << "'";
      }
      if (ref.channel != last_channel) ++switches;
      last_channel = ref.channel;
      last_slot = ref.slot;
      ++tuning;  // the client wakes up exactly for this bucket
    }
    double data_wait = static_cast<double>(last_slot + 1);

    probe_sum += probe_wait;
    data_sum += data_wait;
    tuning_sum += static_cast<double>(tuning);
    switch_sum += static_cast<double>(switches);
  }

  const double n = static_cast<double>(options.num_queries);
  report.mean_probe_wait = probe_sum / n;
  report.mean_data_wait = data_sum / n;
  report.mean_access_time = (probe_sum + data_sum) / n;
  report.mean_tuning_time = (tuning_sum + n) / n;  // +1: the initial probe bucket
  report.mean_switches = switch_sum / n;
  report.listen_fraction =
      report.mean_access_time > 0.0
          ? report.mean_tuning_time / report.mean_access_time
          : 0.0;
  return report;
}

}  // namespace bcast
