#include "sim/server_sim.h"

#include <algorithm>
#include <limits>
#include <optional>
#include <string>
#include <utility>

#include "alloc/allocation.h"
#include "alloc/optimal.h"
#include "obs/obs.h"
#include "obs/stream.h"
#include "tree/alphabetic.h"
#include "util/check.h"
#include "verify/verifier.h"
#include "workload/frequency.h"

namespace bcast {

namespace {

// Builds the catalog index from per-item weights (items keep key order; the
// i-th data leaf is item i).
Result<IndexTree> BuildCatalogIndex(const std::vector<double>& weights,
                                    int fanout) {
  std::vector<DataItem> items;
  items.reserve(weights.size());
  for (size_t i = 0; i < weights.size(); ++i) {
    items.push_back({"item" + std::to_string(i), weights[i]});
  }
  return BuildGreedyAlphabeticTree(items, fanout);
}

// Expected data wait of `plan` when queries follow `true_weights`.
double ExpectedWaitUnder(const IndexTree& tree, const BroadcastSchedule& schedule,
                         const std::vector<double>& true_weights) {
  std::vector<NodeId> data = tree.DataNodes();
  BCAST_CHECK_EQ(data.size(), true_weights.size());
  double weighted = 0.0, total = 0.0;
  for (size_t i = 0; i < data.size(); ++i) {
    weighted += true_weights[i] * static_cast<double>(schedule.DataWaitOf(data[i]));
    total += true_weights[i];
  }
  BCAST_CHECK_GT(total, 0.0);
  return weighted / total;
}

}  // namespace

Result<AdaptiveServerReport> RunAdaptiveServer(
    std::vector<double> initial_true_weights, const DriftFn& drift, Rng* rng,
    const AdaptiveServerOptions& options) {
  if (initial_true_weights.empty()) {
    return InvalidArgumentError("empty catalog");
  }
  if (options.num_cycles < 1 || options.queries_per_cycle < 1) {
    return InvalidArgumentError("need at least one cycle and one query");
  }
  if (options.max_delivery_attempts < 1) {
    return InvalidArgumentError("need at least one delivery attempt");
  }
  const int num_items = static_cast<int>(initial_true_weights.size());
  std::vector<double> true_weights = std::move(initial_true_weights);

  FrequencyEstimator estimator(num_items, options.estimator_decay);

  PlannerOptions plan_options;
  plan_options.num_channels = options.num_channels;
  plan_options.strategy = options.strategy;
  plan_options.degrade = options.degrade;
  plan_options.optimal.budget.max_expansions = options.plan_budget_expansions;
  plan_options.optimal.budget.deadline_ns = options.plan_deadline_ns;
  plan_options.optimal.budget.clock = options.plan_clock;

  // Chaos injector for the planning pool (inactive by default). The injector
  // outlives every PlanMany call below; each cycle wraps it in a hook that
  // offsets the pool-local task index by the cycle, because PlanMany builds
  // a fresh pool per call (indices restart at 0) and an unoffset injector
  // would fault the same batch positions every cycle. PlanMany submits the
  // batch sequentially, so (cycle, slot) -> fault is fully deterministic.
  std::optional<TaskFaultInjector> task_fault_injector;
  if (options.task_faults.active()) {
    auto injector = TaskFaultInjector::Create(options.task_faults);
    if (!injector.ok()) return injector.status();
    task_fault_injector.emplace(std::move(injector).value());
  }

  // Initial plan from the (uniform) prior estimates.
  auto replan = [&](const std::vector<double>& weights)
      -> Result<std::pair<IndexTree, BroadcastPlan>> {
    auto tree = BuildCatalogIndex(weights, options.index_fanout);
    if (!tree.ok()) return tree.status();
    auto plan = PlanBroadcast(*tree, plan_options);
    if (!plan.ok()) return plan.status();
    return std::make_pair(std::move(tree).value(), std::move(plan).value());
  };

  auto active = replan(estimator.EstimatedWeights());
  if (!active.ok()) return active.status();
  IndexTree active_tree = std::move(active->first);
  BroadcastSchedule active_schedule = std::move(active->second.schedule);
  std::vector<NodeId> active_data = active_tree.DataNodes();
  // Slot sequence of the allocation currently on air, kept for warm-starting
  // the next due replan.
  SlotSequence active_slots = std::move(active->second.allocation.slots);
  PlanProvenance active_provenance = active->second.provenance;

  // Ladder stage 4 state: consecutive failed replans drive an exponential
  // backoff on the next attempt (1, 2, 4, ... up to 64 cycles).
  int consecutive_replan_failures = 0;
  int next_replan_attempt = 0;

  // Downlink faults draw from their own substream: a lossless run makes no
  // fault draws, so its query sequence is bit-identical to the seed loop.
  Rng fault_rng = rng->Substream(RngStream::kFault);
  const bool faulty = options.faults.active();

  obs::ScopedSpan run_span("sim.adaptive_server");
  // Flush-on-degrade: every early return below (failed replan with
  // allow_stale=false, verifier rejection of a stale plan, ...) still emits
  // the fin record and flushes the sink via this guard.
  obs::TelemetryFinishGuard telemetry_guard(options.telemetry);
  AdaptiveServerReport report;
  report.mean_delivery_success = 0.0;
  int delivered_cycles = 0;
  for (int cycle = 0; cycle < options.num_cycles; ++cycle) {
    obs::ScopedSpan cycle_span("sim.cycle");
    obs::GetCounter("sim.cycles").Increment();
    // The cycle needs up to two independent plans: the oracle's (from the
    // true weights, every cycle) and the server's due replan (from the
    // current estimates, never at cycle 0: the initial plan is already in
    // place). Both are planned from weights fixed for the whole cycle —
    // drift applies only between cycles — so they batch through PlanMany.
    bool replan_due = options.replan_every > 0 && cycle > 0 &&
                      cycle % options.replan_every == 0;
    if (replan_due && cycle < next_replan_attempt) {
      // Backing off after consecutive replan failures: keep the stale plan
      // on air and skip this attempt entirely.
      replan_due = false;
      obs::GetCounter("planner.backoff_skips").Increment();
      ++report.backoff_skips;
    }
    auto oracle_tree = BuildCatalogIndex(true_weights, options.index_fanout);
    if (!oracle_tree.ok()) return oracle_tree.status();
    Result<IndexTree> next_tree = InternalError("no server replan this cycle");
    std::vector<PlanRequest> batch;
    batch.push_back({&*oracle_tree, plan_options});
    PlannerOptions server_options = plan_options;
    if (replan_due) {
      next_tree = BuildCatalogIndex(estimator.EstimatedWeights(),
                                    options.index_fanout);
      if (!next_tree.ok()) return next_tree.status();
      // Warm start: the allocation on air is a feasible solution for the new
      // tree whenever the rebuilt index kept the same shape — re-cost it
      // under the new weights and hand the exact search min(heuristic,
      // previous) as its initial incumbent. A pure upper bound, so the plan
      // (and the whole report) is byte-identical either way.
      if (options.warm_start_replans && !active_slots.empty() &&
          ValidateSlotSequence(*next_tree, options.num_channels, active_slots)
              .ok()) {
        server_options.optimal.seed_incumbent =
            OptimalOptions::SeedIncumbent::kPrevious;
        server_options.optimal.warm_start_adw =
            SlotSequenceDataWait(*next_tree, active_slots);
      }
      batch.push_back({&*next_tree, server_options});
    }
    // All parallelism is encapsulated in PlanMany's pool-and-join; the
    // simulator itself stays single-threaded, so none of its state needs
    // lock annotations (util/thread_annotations.h conventions).
    ThreadPool::TaskHook cycle_hook = nullptr;
    if (task_fault_injector.has_value()) {
      TaskFaultInjector* injector = &*task_fault_injector;
      const uint64_t base = static_cast<uint64_t>(cycle) * 1024;
      cycle_hook = [injector, base](uint64_t index) {
        injector->OnTask(base + index);
      };
    }
    std::vector<Result<BroadcastPlan>> plans =
        PlanMany(batch, options.planner_threads, cycle_hook);

    Result<BroadcastPlan> oracle_plan = std::move(plans[0]);
    if (!oracle_plan.ok() && task_fault_injector.has_value()) {
      // An injected pool fault can kill the oracle's task too. The oracle is
      // the report's baseline, not part of the serving ladder, so retry it
      // inline (no pool, no hook) once.
      obs::GetCounter("sim.oracle_plan_retries").Increment();
      oracle_plan = PlanBroadcast(*oracle_tree, plan_options);
    }
    if (!oracle_plan.ok()) return oracle_plan.status();
    const BroadcastSchedule& oracle_schedule = oracle_plan->schedule;

    if (replan_due) {
      Result<BroadcastPlan>& server_plan = plans[1];
      if (server_plan.ok()) {
        active_tree = std::move(next_tree).value();
        active_schedule = std::move(server_plan->schedule);
        active_data = active_tree.DataNodes();
        active_slots = std::move(server_plan->allocation.slots);
        active_provenance = server_plan->provenance;
        consecutive_replan_failures = 0;
      } else if (options.allow_stale) {
        // Ladder stage 4: the planner failed outright (injected fault,
        // budget under DegradePolicy::kNever, ...). Keep the previous
        // cycle's plan on air — it is still feasible for the tree it was
        // built for — and back off exponentially before the next attempt.
        ++consecutive_replan_failures;
        next_replan_attempt =
            cycle + (1 << std::min(consecutive_replan_failures, 6));
        active_provenance = PlanProvenance::kStalePrevious;
        obs::GetCounter("planner.degraded.stale").Increment();
        ++report.stale_serves;
        // Every degraded serve is re-verified before going (back) on air.
        BCAST_RETURN_IF_ERROR(
            AllocationVerifier(active_tree)
                .VerifySlots(options.num_channels, active_slots,
                             SlotSequenceDataWait(active_tree, active_slots))
                .ToStatus());
      } else {
        return server_plan.status();
      }
    }

    // Serve this cycle's queries from the TRUE distribution. Under a faulty
    // downlink the client re-reads a lost/corrupted data bucket at the same
    // slot of the next cycle, so every retry costs one full cycle; the
    // realized wait is averaged over delivered queries only.
    const int cycle_len = active_schedule.num_slots();
    double realized = 0.0;
    int delivered = 0;
    for (int q = 0; q < options.queries_per_cycle; ++q) {
      int item = static_cast<int>(rng->WeightedIndex(true_weights));
      NodeId node = active_data[static_cast<size_t>(item)];
      estimator.Observe(item);  // the request itself always reaches the server
      double wait = static_cast<double>(active_schedule.DataWaitOf(node));
      if (faulty) {
        SlotRef ref = active_schedule.placement(node);
        FaultProcess medium(options.faults, &fault_rng);
        int attempt = 0;
        while (attempt < options.max_delivery_attempts &&
               medium.Observe(ref.channel,
                              ref.slot + static_cast<int64_t>(attempt) *
                                             cycle_len) != BucketOutcome::kOk) {
          ++attempt;
        }
        if (attempt == options.max_delivery_attempts) continue;  // undelivered
        wait += static_cast<double>(attempt) * cycle_len;
      }
      realized += wait;
      ++delivered;
    }
    // A cycle that delivered nothing has no realized wait — averaging in 0
    // (the best possible wait) would flatter the mean exactly when the
    // downlink is at its worst, so such cycles report NaN and are excluded
    // from mean_realized.
    if (delivered > 0) {
      realized /= delivered;
      report.mean_realized += realized;
      ++delivered_cycles;
    } else {
      realized = std::numeric_limits<double>::quiet_NaN();
    }
    const double delivery_rate =
        static_cast<double>(delivered) / options.queries_per_cycle;

    double oracle_wait =
        ExpectedWaitUnder(*oracle_tree, oracle_schedule, true_weights);

    CycleStats stats;
    stats.cycle = cycle;
    stats.realized_data_wait = realized;
    stats.oracle_data_wait = oracle_wait;
    stats.estimation_error =
        NormalizedEstimationError(estimator.EstimatedWeights(), true_weights);
    stats.delivery_success_rate = delivery_rate;
    stats.served_provenance = active_provenance;
    report.cycles.push_back(stats);
    report.mean_oracle += oracle_wait;
    report.mean_delivery_success += delivery_rate;

    if (options.telemetry != nullptr) {
      obs::TelemetryPipeline& telemetry = *options.telemetry;
      telemetry.Observe("sim.realized_wait", realized);
      telemetry.Observe("sim.oracle_wait", oracle_wait);
      telemetry.Observe("sim.estimation_error", stats.estimation_error);
      telemetry.Observe("sim.delivery_rate", delivery_rate);
      // Degradation ladder rung on air: 0 exact, 1 anytime, 2 heuristic,
      // 3 stale-previous (alloc/allocation.h enumerator order).
      telemetry.Observe("sim.served_rung",
                        static_cast<double>(active_provenance));
      telemetry.Tick(static_cast<uint64_t>(cycle));
    }

    estimator.EndEpoch();
    if (drift) drift(cycle, &true_weights);
  }
  report.mean_realized =
      delivered_cycles > 0 ? report.mean_realized / delivered_cycles
                           : std::numeric_limits<double>::quiet_NaN();
  report.mean_oracle /= options.num_cycles;
  report.mean_delivery_success /= options.num_cycles;
  telemetry_guard.set_outcome(
      report.stale_serves > 0 || report.backoff_skips > 0 ? "degraded" : "ok");
  return report;
}

}  // namespace bcast
