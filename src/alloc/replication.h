// Index replication within a broadcast cycle (the paper's second future-work
// item: "to reduce the initial time after tuning to the broadcast channel,
// index nodes should be properly replicated").
//
// The base model makes a client wait for the *next cycle start* to catch the
// root — an expected probe wait of cycle/2. This module inserts `root_copies`
// replica blocks at even spacing; each block carries the top
// `replicate_levels` index levels ((1,m)-indexing of [IVB94a]: with 1 level
// only the root bucket is repeated, with deeper segments a mid-cycle client
// can descend several levels without wrapping into the next cycle). The
// probe wait falls to ~cycle/(2·copies) while the cycle grows by the replica
// blocks, and ComputeReplicatedCosts integrates the exact trade-off.
//
// Pointers in this model are circular: from time p, the next occurrence of a
// node with occurrence slots S is the earliest s in S (mod cycle) at or
// after p. A replica block late in the cycle may point to children airing
// early in the *next* cycle.

#ifndef BCAST_ALLOC_REPLICATION_H_
#define BCAST_ALLOC_REPLICATION_H_

#include <vector>

#include "alloc/allocation.h"
#include "broadcast/schedule.h"
#include "tree/index_tree.h"
#include "util/rng.h"
#include "util/status.h"

namespace bcast {

/// A broadcast cycle whose grid additionally carries replica blocks of the
/// top index levels.
struct ReplicatedProgram {
  int num_channels = 0;
  int cycle_length = 0;  // slots, including replica columns
  /// grid[channel][slot]; kInvalidNode for empty buckets. Replicated index
  /// nodes appear multiple times; every other node exactly once.
  std::vector<std::vector<NodeId>> grid;
  /// Slots of channel 0 holding a root bucket (sorted ascending).
  std::vector<int> root_slots;
  /// Primary placement of every node (for replicated nodes: the copy from
  /// the base schedule).
  std::vector<SlotRef> primary;
  /// All occurrence slots per node, sorted ascending (size 1 for
  /// unreplicated nodes).
  std::vector<std::vector<int>> occurrences;
};

struct ReplicationOptions {
  /// Total copies of the replicated segment per cycle (>= 1; 1 reproduces
  /// the base schedule).
  int root_copies = 1;
  /// How many top index levels each extra copy carries (>= 1; 1 = just the
  /// root bucket). Deeper segments shorten the first hops of mid-cycle
  /// clients at the price of wider replica blocks.
  int replicate_levels = 1;
};

/// Builds a replicated program from a feasible slot sequence by inserting
/// replica blocks at even spacing. Errors if the slot sequence is infeasible
/// or options are out of range.
Result<ReplicatedProgram> BuildReplicatedProgram(
    const IndexTree& tree, const SlotSequence& slots, int num_channels,
    const ReplicationOptions& options);

/// Structural invariants: every node present with the advertised occurrence
/// count, grids and occurrence lists consistent, primary copies ordered
/// child-after-parent.
Status ValidateReplicatedProgram(const IndexTree& tree,
                                 const ReplicatedProgram& program);

/// Exact expected costs under uniform arrival times and weight-proportional
/// queries, following the circular pointer-walk model above (each hop takes
/// the earliest occurrence of the next node).
struct ReplicatedCosts {
  double expected_probe_wait = 0.0;   // arrival -> first usable root bucket
  double expected_walk_time = 0.0;    // root bucket -> data bucket downloaded
  double expected_access_time = 0.0;  // probe + walk
  double expected_tuning_time = 0.0;  // buckets listened (incl. root, data)
};
ReplicatedCosts ComputeReplicatedCosts(const IndexTree& tree,
                                       const ReplicatedProgram& program);

/// Monte-Carlo cross-check of ComputeReplicatedCosts: simulates `num_queries`
/// client accesses (uniform arrival, weighted target, circular pointer walk).
ReplicatedCosts SimulateReplicatedAccess(const IndexTree& tree,
                                         const ReplicatedProgram& program,
                                         Rng* rng, uint64_t num_queries);

}  // namespace bcast

#endif  // BCAST_ALLOC_REPLICATION_H_
