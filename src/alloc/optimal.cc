#include "alloc/optimal.h"

#include <cmath>
#include <limits>

#include "alloc/baselines.h"
#include "alloc/data_tree.h"
#include "alloc/heuristics.h"
#include "alloc/topo_parallel.h"
#include "alloc/topo_search.h"
#include "exec/thread_pool.h"
#include "obs/obs.h"

namespace bcast {

namespace {

// Budget for the deterministic pruning-breakdown recount. Snapshot-only work
// (it never runs without a registry installed), so it is capped well below
// the optimizer's own expansion limit and simply marks itself truncated when
// the reduced tree is larger.
constexpr uint64_t kBreakdownNodeLimit = 2'000'000;

// The acceptance contract for "per-rule counters identical across thread
// counts": re-enumerate the reduced tree without bound or incumbent, whose
// stats are a pure function of (tree, options), and publish that under
// "pruning.*". The live engine counters (search.*) stay as run-varying
// telemetry.
void EmitDeterministicBreakdown(TopoTreeSearch* search) {
  if (!obs::MetricsEnabled()) return;
  auto stats = search->ReducedTreeStats(kBreakdownNodeLimit);
  if (!stats.ok()) {
    obs::GetCounter("pruning.breakdown_truncated").Increment();
    return;
  }
  EmitPruningBreakdown(*stats);
}

// Resolves the incumbent seed (a total weighted wait V) for the exact
// topological-tree search, per options.seed_incumbent. Returns +inf for an
// unseeded search. The returned bound carries a tiny relative inflation so
// that a heuristic cost recomputed as ADW x total_weight — which can land an
// ulp *below* the search's own slot-by-slot V accumulation of the very same
// allocation — still admits it (a seed below the true optimum would prune
// every path and turn into an INTERNAL dead-end error).
double ResolveSeedCost(const IndexTree& tree, int num_channels,
                       const OptimalOptions& options) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  if (options.seed_incumbent == OptimalOptions::SeedIncumbent::kNone) {
    return kInf;
  }
  double seed_adw = kInf;
  auto heuristic = SortingHeuristic(tree, num_channels);
  if (heuristic.ok()) {
    seed_adw = heuristic->average_data_wait;
    if (obs::MetricsEnabled()) {
      obs::GetCounter("search.seed.heuristic").Increment();
    }
  }
  if (options.seed_incumbent == OptimalOptions::SeedIncumbent::kPrevious &&
      !std::isnan(options.warm_start_adw) &&
      options.warm_start_adw < seed_adw) {
    seed_adw = options.warm_start_adw;
    if (obs::MetricsEnabled()) {
      obs::GetCounter("search.seed.warm_start").Increment();
    }
  }
  if (seed_adw == kInf) return kInf;
  double seed_v = seed_adw * tree.total_data_weight();
  seed_v *= 1.0 + 1e-9;  // float-slack so the seeding allocation itself fits
  return seed_v;
}

}  // namespace

Result<AllocationResult> FindOptimalAllocation(const IndexTree& tree,
                                               int num_channels,
                                               const OptimalOptions& options) {
  if (!tree.finalized()) {
    return FailedPreconditionError("index tree must be finalized");
  }
  if (num_channels < 1) return InvalidArgumentError("need at least one channel");
  if (options.num_threads < 0) {
    return InvalidArgumentError("num_threads must be >= 0 (0 = hardware)");
  }

  const bool budgeted = options.budget.active();
  if (num_channels >= tree.max_level_width()) {
    return LevelAllocation(tree, num_channels);
  }
  // The data-tree fast path has no anytime support; with an active budget
  // the one-channel case routes through the budget-aware topological search
  // instead (same optimum, and the degradation ladder stays uniform).
  if (num_channels == 1 && options.use_pruning && !budgeted) {
    DataTreeOptions dt_options;
    dt_options.max_steps = options.max_expansions;
    auto search = DataTreeSearch::Create(tree, dt_options);
    if (!search.ok()) return search.status();
    auto result = search->FindOptimal();
    // The data-tree search is sequential, so its live per-rule counts are
    // already deterministic — publish them as the breakdown directly.
    if (result.ok()) EmitPruningBreakdown(result->stats);
    return result;
  }
  TopoTreeSearch::Options topo_options;
  topo_options.num_channels = num_channels;
  topo_options.prune_candidates = options.use_pruning;
  topo_options.prune_local_swap = options.use_pruning;
  topo_options.bound = options.bound;
  topo_options.max_expansions = options.max_expansions;
  auto search = TopoTreeSearch::Create(tree, topo_options);
  if (!search.ok()) return search.status();
  EmitDeterministicBreakdown(&*search);
  const double seed_cost_v = ResolveSeedCost(tree, num_channels, options);
  int threads = options.num_threads == 0 ? ThreadPool::HardwareConcurrency()
                                         : options.num_threads;
  Result<AllocationResult> result = InternalError("unreachable");
  if (budgeted && options.budget.max_expansions > 0) {
    // Deterministic expansion budget: always the canonical sequential DFS,
    // so the anytime incumbent is byte-identical across thread counts.
    result = search->FindOptimalDfs(seed_cost_v, &options.budget);
  } else if (threads > 1) {
    result = FindOptimalTopoParallel(*search, threads, seed_cost_v,
                                     budgeted ? &options.budget : nullptr);
  } else {
    result = search->FindOptimalDfs(seed_cost_v,
                                    budgeted ? &options.budget : nullptr);
  }
  if (!result.ok() && budgeted &&
      result.status().code() == StatusCode::kResourceExhausted) {
    // Degradation ladder stage 3: the budget fired before any complete path
    // (or the hard valve tripped) — serve the sorting heuristic rather than
    // nothing. Tagged kHeuristic with its own (verified) cost bracket.
    obs::GetCounter("search.budget.heuristic_fallback").Increment();
    return SortingHeuristic(tree, num_channels);
  }
  return result;
}

}  // namespace bcast
