#include "alloc/allocation.h"

#include <string>

#include "obs/obs.h"
#include "util/check.h"

namespace bcast {

const char* PlanProvenanceName(PlanProvenance provenance) {
  switch (provenance) {
    case PlanProvenance::kExact:
      return "exact";
    case PlanProvenance::kAnytime:
      return "anytime";
    case PlanProvenance::kHeuristic:
      return "heuristic";
    case PlanProvenance::kStalePrevious:
      return "stale-previous";
  }
  BCAST_CHECK(false) << "unknown PlanProvenance";
  return "unknown";
}

void EmitSearchStats(const char* prefix, const SearchStats& stats) {
  obs::Registry* registry = obs::GlobalMetrics();
  if (registry == nullptr) return;
  const std::string base(prefix);
  auto add = [&](const char* name, uint64_t value) {
    registry->GetCounter(base + name).Add(value);
  };
  add(".nodes_expanded", stats.nodes_expanded);
  add(".nodes_generated", stats.nodes_generated);
  add(".nodes_pruned", stats.nodes_pruned);
  add(".paths_completed", stats.paths_completed);
  add(".bound_cutoffs", stats.bound_cutoffs);
  add(".incumbent_updates", stats.incumbent_updates);
  add(".dominance_skips", stats.dominance_skips);
  add(".store.hits", stats.store_hits);
  add(".store.inserts", stats.store_inserts);
  add(".store.dominated", stats.store_dominated);
  add(".store.evictions", stats.store_evictions);
  add(".store.cas_retries", stats.store_cas_retries);
  const PruneCounts& rules = stats.pruned_by_rule;
  add(".pruned.property1", rules.property1);
  add(".pruned.property2", rules.property2);
  add(".pruned.property3", rules.property3);
  add(".pruned.lemma3", rules.lemma3);
  add(".pruned.lemma4", rules.lemma4);
  add(".pruned.lemma5", rules.lemma5);
  add(".pruned.lemma6", rules.lemma6);
  add(".pruned.corollary2", rules.corollary2);
}

void EmitPruningBreakdown(const SearchStats& stats) {
  obs::Registry* registry = obs::GlobalMetrics();
  if (registry == nullptr) return;
  auto add = [&](const char* name, uint64_t value) {
    registry->GetCounter(name).Add(value);
  };
  add("pruning.property1", stats.pruned_by_rule.property1);
  add("pruning.property2", stats.pruned_by_rule.property2);
  add("pruning.property3", stats.pruned_by_rule.property3);
  add("pruning.lemma3", stats.pruned_by_rule.lemma3);
  add("pruning.lemma4", stats.pruned_by_rule.lemma4);
  add("pruning.lemma5", stats.pruned_by_rule.lemma5);
  add("pruning.lemma6", stats.pruned_by_rule.lemma6);
  add("pruning.corollary2", stats.pruned_by_rule.corollary2);
  add("pruning.reduced_tree_nodes", stats.nodes_expanded);
  add("pruning.generated", stats.nodes_generated);
}

double SlotSequenceDataWait(const IndexTree& tree, const SlotSequence& slots) {
  double total_weight = tree.total_data_weight();
  BCAST_CHECK_GT(total_weight, 0.0);
  std::vector<bool> seen(static_cast<size_t>(tree.num_nodes()), false);
  double weighted = 0.0;
  for (size_t s = 0; s < slots.size(); ++s) {
    for (NodeId node : slots[s]) {
      seen[static_cast<size_t>(node)] = true;
      if (tree.is_data(node)) {
        weighted += tree.weight(node) * static_cast<double>(s + 1);
      }
    }
  }
  for (NodeId d : tree.DataNodes()) {
    BCAST_CHECK(seen[static_cast<size_t>(d)])
        << "data node '" << tree.label(d) << "' missing from slot sequence";
  }
  return weighted / total_weight;
}

Status ValidateSlotSequence(const IndexTree& tree, int num_channels,
                            const SlotSequence& slots) {
  std::vector<int> slot_of(static_cast<size_t>(tree.num_nodes()), -1);
  for (size_t s = 0; s < slots.size(); ++s) {
    if (static_cast<int>(slots[s].size()) > num_channels) {
      return FailedPreconditionError("slot " + std::to_string(s + 1) +
                                     " exceeds the channel count");
    }
    for (NodeId node : slots[s]) {
      if (node < 0 || node >= tree.num_nodes()) {
        return InvalidArgumentError("slot sequence references unknown node " +
                                    std::to_string(node));
      }
      if (slot_of[static_cast<size_t>(node)] != -1) {
        return FailedPreconditionError("node '" + tree.label(node) +
                                       "' appears twice");
      }
      slot_of[static_cast<size_t>(node)] = static_cast<int>(s);
    }
  }
  for (NodeId id = 0; id < tree.num_nodes(); ++id) {
    if (slot_of[static_cast<size_t>(id)] == -1) {
      return FailedPreconditionError("node '" + tree.label(id) + "' unallocated");
    }
    NodeId parent = tree.parent(id);
    if (parent != kInvalidNode &&
        slot_of[static_cast<size_t>(parent)] >= slot_of[static_cast<size_t>(id)]) {
      return FailedPreconditionError("child '" + tree.label(id) +
                                     "' not strictly after parent '" +
                                     tree.label(parent) + "'");
    }
  }
  return Status::Ok();
}

}  // namespace bcast
