#include "alloc/allocation.h"

#include <string>

#include "util/check.h"

namespace bcast {

double SlotSequenceDataWait(const IndexTree& tree, const SlotSequence& slots) {
  double total_weight = tree.total_data_weight();
  BCAST_CHECK_GT(total_weight, 0.0);
  std::vector<bool> seen(static_cast<size_t>(tree.num_nodes()), false);
  double weighted = 0.0;
  for (size_t s = 0; s < slots.size(); ++s) {
    for (NodeId node : slots[s]) {
      seen[static_cast<size_t>(node)] = true;
      if (tree.is_data(node)) {
        weighted += tree.weight(node) * static_cast<double>(s + 1);
      }
    }
  }
  for (NodeId d : tree.DataNodes()) {
    BCAST_CHECK(seen[static_cast<size_t>(d)])
        << "data node '" << tree.label(d) << "' missing from slot sequence";
  }
  return weighted / total_weight;
}

Status ValidateSlotSequence(const IndexTree& tree, int num_channels,
                            const SlotSequence& slots) {
  std::vector<int> slot_of(static_cast<size_t>(tree.num_nodes()), -1);
  for (size_t s = 0; s < slots.size(); ++s) {
    if (static_cast<int>(slots[s].size()) > num_channels) {
      return FailedPreconditionError("slot " + std::to_string(s + 1) +
                                     " exceeds the channel count");
    }
    for (NodeId node : slots[s]) {
      if (node < 0 || node >= tree.num_nodes()) {
        return InvalidArgumentError("slot sequence references unknown node " +
                                    std::to_string(node));
      }
      if (slot_of[static_cast<size_t>(node)] != -1) {
        return FailedPreconditionError("node '" + tree.label(node) +
                                       "' appears twice");
      }
      slot_of[static_cast<size_t>(node)] = static_cast<int>(s);
    }
  }
  for (NodeId id = 0; id < tree.num_nodes(); ++id) {
    if (slot_of[static_cast<size_t>(id)] == -1) {
      return FailedPreconditionError("node '" + tree.label(id) + "' unallocated");
    }
    NodeId parent = tree.parent(id);
    if (parent != kInvalidNode &&
        slot_of[static_cast<size_t>(parent)] >= slot_of[static_cast<size_t>(id)]) {
      return FailedPreconditionError("child '" + tree.label(id) +
                                     "' not strictly after parent '" +
                                     tree.label(parent) + "'");
    }
  }
  return Status::Ok();
}

}  // namespace bcast
