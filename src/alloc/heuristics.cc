#include "alloc/heuristics.h"

#include <algorithm>
#include <deque>
#include <string>

#include "alloc/data_tree.h"
#include "broadcast/cost.h"
#include "obs/obs.h"
#include "util/check.h"
#include "verify/verifier.h"

namespace bcast {

namespace {

// The paper's subtree ordering (Section 4.2): A precedes B iff
// N_B·W(A) >= N_A·W(B). Implemented as a strict comparator (ties keep the
// original order via stable_sort).
bool SubtreeBefore(const IndexTree& tree, NodeId a, NodeId b) {
  const TreeNode& na = tree.node(a);
  const TreeNode& nb = tree.node(b);
  return na.subtree_weight * static_cast<double>(nb.subtree_size) >
         nb.subtree_weight * static_cast<double>(na.subtree_size);
}

// Children of `id`, reordered by the sorting rule.
std::vector<NodeId> SortedChildren(const IndexTree& tree, NodeId id) {
  std::vector<NodeId> kids = tree.children(id);
  std::stable_sort(kids.begin(), kids.end(), [&](NodeId a, NodeId b) {
    return SubtreeBefore(tree, a, b);
  });
  return kids;
}

// Preorder of the tree with children visited in sorted order; this is the
// paper's single-channel sorted broadcast (Fig. 13).
std::vector<NodeId> SortedPreorder(const IndexTree& tree) {
  std::vector<NodeId> order;
  order.reserve(static_cast<size_t>(tree.num_nodes()));
  std::vector<NodeId> stack = {tree.root()};
  while (!stack.empty()) {
    NodeId id = stack.back();
    stack.pop_back();
    order.push_back(id);
    std::vector<NodeId> kids = SortedChildren(tree, id);
    for (size_t i = kids.size(); i-- > 0;) stack.push_back(kids[i]);
  }
  return order;
}

void CopySorted(const IndexTree& src, NodeId src_id, IndexTree* dst,
                NodeId dst_parent) {
  const TreeNode& n = src.node(src_id);
  NodeId dst_id;
  if (n.kind == NodeKind::kData) {
    dst_id = dst->AddDataNode(dst_parent, n.weight, n.label);
    return;
  }
  dst_id = dst->AddIndexNode(dst_parent, n.label);
  for (NodeId child : SortedChildren(src, src_id)) {
    CopySorted(src, child, dst, dst_id);
  }
}

}  // namespace

IndexTree SortIndexTree(const IndexTree& tree) {
  BCAST_CHECK(tree.finalized());
  IndexTree sorted;
  CopySorted(tree, tree.root(), &sorted, kInvalidNode);
  BCAST_CHECK(sorted.Finalize().ok());
  return sorted;
}

SlotSequence PackLinearOrder(const IndexTree& tree, int num_channels,
                             const std::vector<NodeId>& order) {
  BCAST_CHECK_GE(num_channels, 1);
  BCAST_CHECK_EQ(order.size(), static_cast<size_t>(tree.num_nodes()));
  std::vector<int> placed_slot(static_cast<size_t>(tree.num_nodes()), -1);
  std::deque<NodeId> remaining(order.begin(), order.end());
  SlotSequence slots;
  while (!remaining.empty()) {
    int slot = static_cast<int>(slots.size());
    std::vector<NodeId> current;
    std::deque<NodeId> deferred;
    while (!remaining.empty() &&
           current.size() < static_cast<size_t>(num_channels)) {
      NodeId node = remaining.front();
      remaining.pop_front();
      NodeId parent = tree.parent(node);
      bool parent_ready =
          parent == kInvalidNode ||
          (placed_slot[static_cast<size_t>(parent)] >= 0 &&
           placed_slot[static_cast<size_t>(parent)] < slot);
      if (parent_ready) {
        placed_slot[static_cast<size_t>(node)] = slot;
        current.push_back(node);
      } else {
        deferred.push_back(node);
      }
    }
    BCAST_CHECK(!current.empty()) << "linear order is not topological";
    // Deferred nodes keep their relative order ahead of the untouched rest.
    for (size_t i = deferred.size(); i-- > 0;) remaining.push_front(deferred[i]);
    slots.push_back(std::move(current));
  }
  return slots;
}

// ---------------------------------------------------------------------------
// Index tree sorting (+ 1_To_k_BroadcastChannel)
// ---------------------------------------------------------------------------

namespace {

// The paper's 1_To_k_BroadcastChannel procedure: scan the level lists of the
// sorted tree top-down, allocate each list into one slot of up to k channels,
// and merge the unallocated remainder into the next level's list (keeping
// sequence order). After the last level the remaining list is dumped slot by
// slot. Nodes whose parent is not yet placed in a strictly earlier slot are
// deferred (the feasibility repair documented in the header).
SlotSequence OneToKAllocation(const IndexTree& tree, int num_channels,
                              const std::vector<NodeId>& sorted_preorder) {
  std::vector<int> seq(static_cast<size_t>(tree.num_nodes()), 0);
  for (size_t i = 0; i < sorted_preorder.size(); ++i) {
    seq[static_cast<size_t>(sorted_preorder[i])] = static_cast<int>(i);
  }
  // Level lists in sequence order.
  std::vector<std::vector<NodeId>> lists(static_cast<size_t>(tree.depth()));
  for (NodeId id : sorted_preorder) {
    lists[static_cast<size_t>(tree.node(id).level - 1)].push_back(id);
  }

  std::vector<int> placed_slot(static_cast<size_t>(tree.num_nodes()), -1);
  SlotSequence slots;
  auto fill_one_slot = [&](std::vector<NodeId>* list) {
    int slot = static_cast<int>(slots.size());
    std::vector<NodeId> current;
    std::vector<NodeId> leftover;
    size_t taken = 0;
    for (size_t i = 0; i < list->size(); ++i) {
      NodeId node = (*list)[i];
      NodeId parent = tree.parent(node);
      bool parent_ready =
          parent == kInvalidNode ||
          (placed_slot[static_cast<size_t>(parent)] >= 0 &&
           placed_slot[static_cast<size_t>(parent)] < slot);
      if (taken < static_cast<size_t>(num_channels) && parent_ready) {
        placed_slot[static_cast<size_t>(node)] = slot;
        current.push_back(node);
        ++taken;
      } else {
        leftover.push_back(node);
      }
    }
    BCAST_CHECK(!current.empty()) << "1_To_k made no progress";
    slots.push_back(std::move(current));
    *list = std::move(leftover);
  };

  std::vector<NodeId> carry;
  for (size_t level = 0; level < lists.size(); ++level) {
    // Merge the carried-over remainder into this level's list by sequence
    // number (both inputs are sequence-sorted).
    std::vector<NodeId> merged;
    merged.reserve(carry.size() + lists[level].size());
    std::merge(carry.begin(), carry.end(), lists[level].begin(),
               lists[level].end(), std::back_inserter(merged),
               [&](NodeId a, NodeId b) {
                 return seq[static_cast<size_t>(a)] < seq[static_cast<size_t>(b)];
               });
    fill_one_slot(&merged);
    carry = std::move(merged);
  }
  while (!carry.empty()) fill_one_slot(&carry);
  return slots;
}

}  // namespace

Result<AllocationResult> SortingHeuristic(const IndexTree& tree,
                                          int num_channels) {
  if (!tree.finalized()) {
    return FailedPreconditionError("index tree must be finalized");
  }
  if (num_channels < 1) return InvalidArgumentError("need at least one channel");

  obs::ScopedSpan span("heuristics.sort");
  std::vector<NodeId> order;
  {
    obs::ScopedTimer timer(obs::GetHistogram("heuristics.sort.order_ns"));
    order = SortedPreorder(tree);
  }
  AllocationResult result;
  if (num_channels == 1) {
    result.slots.reserve(order.size());
    for (NodeId id : order) result.slots.push_back({id});
  } else {
    obs::ScopedTimer timer(obs::GetHistogram("heuristics.sort.pack_ns"));
    result.slots = OneToKAllocation(tree, num_channels, order);
  }
  BCAST_RETURN_IF_ERROR(ValidateSlotSequence(tree, num_channels, result.slots));
  result.average_data_wait = SlotSequenceDataWait(tree, result.slots);
  result.provenance = PlanProvenance::kHeuristic;
  result.cost_upper_bound = result.average_data_wait;
  result.cost_lower_bound = DataWaitLowerBound(tree, num_channels);
  // Debug builds re-verify through the independent checker (including the
  // ADW recount the release-mode validation above does not do).
  BCAST_DCHECK_OK(AllocationVerifier(tree)
                      .VerifySlots(num_channels, result.slots,
                                   result.average_data_wait)
                      .ToStatus());
  return result;
}

// ---------------------------------------------------------------------------
// Index tree shrinking
// ---------------------------------------------------------------------------

namespace {

// Mutable view of a (sub)tree during node combination. Indices are the ids of
// the tree the view was created from; `expansion` maps a (pseudo) data node
// back to the linear sequence of *original* ids it stands for.
struct WorkTree {
  struct WorkNode {
    bool alive = true;
    bool is_data = false;
    double weight = 0.0;
    NodeId parent = kInvalidNode;
    std::vector<NodeId> children;
    std::vector<NodeId> expansion;  // original ids; data nodes only
    NodeId orig = kInvalidNode;     // original id of this node itself
  };
  std::vector<WorkNode> nodes;
  int alive_count = 0;
};

WorkTree MakeWorkTree(const IndexTree& tree, const std::vector<NodeId>& to_orig) {
  WorkTree wt;
  wt.nodes.resize(static_cast<size_t>(tree.num_nodes()));
  wt.alive_count = tree.num_nodes();
  for (NodeId id = 0; id < tree.num_nodes(); ++id) {
    WorkTree::WorkNode& wn = wt.nodes[static_cast<size_t>(id)];
    wn.is_data = tree.is_data(id);
    wn.weight = tree.weight(id);
    wn.parent = tree.parent(id);
    wn.children = tree.children(id);
    wn.orig = to_orig[static_cast<size_t>(id)];
    if (wn.is_data) wn.expansion = {wn.orig};
  }
  return wt;
}

// Combines index nodes whose children are all data (lightest combined weight
// first) until at most `target` nodes remain. Always reaches the target:
// in the limit the whole tree collapses into one pseudo data node.
void CombineUntil(WorkTree* wt, int target) {
  while (wt->alive_count > target) {
    int best = -1;
    double best_weight = 0.0;
    for (size_t id = 0; id < wt->nodes.size(); ++id) {
      const WorkTree::WorkNode& wn = wt->nodes[id];
      if (!wn.alive || wn.is_data) continue;
      double sum = 0.0;
      bool all_data = true;
      for (NodeId c : wn.children) {
        const WorkTree::WorkNode& cn = wt->nodes[static_cast<size_t>(c)];
        if (!cn.is_data) {
          all_data = false;
          break;
        }
        sum += cn.weight;
      }
      if (!all_data) continue;
      if (best == -1 || sum < best_weight) {
        best = static_cast<int>(id);
        best_weight = sum;
      }
    }
    BCAST_CHECK_NE(best, -1) << "no combinable index node found";
    WorkTree::WorkNode& wn = wt->nodes[static_cast<size_t>(best)];
    // Restore order inside the combined node: the index node itself, then its
    // data children by descending weight.
    std::vector<NodeId> kids = wn.children;
    std::stable_sort(kids.begin(), kids.end(), [&](NodeId a, NodeId b) {
      return wt->nodes[static_cast<size_t>(a)].weight >
             wt->nodes[static_cast<size_t>(b)].weight;
    });
    std::vector<NodeId> expansion = {wn.orig};
    for (NodeId c : kids) {
      WorkTree::WorkNode& cn = wt->nodes[static_cast<size_t>(c)];
      expansion.insert(expansion.end(), cn.expansion.begin(), cn.expansion.end());
      cn.alive = false;
      --wt->alive_count;
    }
    wn.is_data = true;
    wn.weight = best_weight;
    wn.children.clear();
    wn.expansion = std::move(expansion);
  }
}

// Rebuilds an IndexTree from the alive nodes of a WorkTree. `expansions[i]`
// maps new data node i to its original-id sequence; `origs[i]` is the
// original id behind new node i.
void EmitWorkTree(const WorkTree& wt, int work_id, IndexTree* tree,
                  NodeId parent, std::vector<std::vector<NodeId>>* expansions) {
  const WorkTree::WorkNode& wn = wt.nodes[static_cast<size_t>(work_id)];
  BCAST_CHECK(wn.alive);
  if (wn.is_data) {
    tree->AddDataNode(parent, wn.weight, "p" + std::to_string(work_id));
    expansions->push_back(wn.expansion);
    return;
  }
  tree->AddIndexNode(parent, "i" + std::to_string(work_id));
  expansions->push_back({wn.orig});
  NodeId self = static_cast<NodeId>(expansions->size()) - 1;
  for (NodeId c : wn.children) {
    if (wt.nodes[static_cast<size_t>(c)].alive) {
      EmitWorkTree(wt, c, tree, self, expansions);
    }
  }
}

// Extracts the subtree rooted at `sub_root` into a standalone tree plus the
// new-id -> original-id map (composed through `to_orig`).
void ExtractSubtree(const IndexTree& tree, NodeId sub_root,
                    const std::vector<NodeId>& to_orig, IndexTree* out,
                    std::vector<NodeId>* out_to_orig, NodeId parent) {
  const TreeNode& n = tree.node(sub_root);
  if (n.kind == NodeKind::kData) {
    out->AddDataNode(parent, n.weight, n.label);
    out_to_orig->push_back(to_orig[static_cast<size_t>(sub_root)]);
    return;
  }
  out->AddIndexNode(parent, n.label);
  out_to_orig->push_back(to_orig[static_cast<size_t>(sub_root)]);
  NodeId self = static_cast<NodeId>(out_to_orig->size()) - 1;
  for (NodeId c : n.children) {
    ExtractSubtree(tree, c, to_orig, out, out_to_orig, self);
  }
}

// Solves `tree` (whose node i stands for original id to_orig[i]) into a
// feasible linear order of original ids.
Result<std::vector<NodeId>> ShrinkSolveOrder(const IndexTree& tree,
                                             const std::vector<NodeId>& to_orig,
                                             const ShrinkOptions& options,
                                             int num_channels) {
  const int limit = options.exact_size_limit;
  if (tree.num_nodes() <= limit) {
    // Exact single-channel order via the data-tree search.
    obs::ScopedTimer timer(obs::GetHistogram("heuristics.shrink.exact_ns"));
    DataTreeOptions dt_options;
    auto search = DataTreeSearch::Create(tree, dt_options);
    if (!search.ok()) return search.status();
    auto optimal = search->FindOptimal();
    if (!optimal.ok()) return optimal.status();
    std::vector<NodeId> order;
    order.reserve(static_cast<size_t>(tree.num_nodes()));
    for (const auto& slot : optimal->slots) {
      for (NodeId id : slot) order.push_back(to_orig[static_cast<size_t>(id)]);
    }
    return order;
  }

  if (options.strategy == ShrinkOptions::Strategy::kNodeCombination) {
    WorkTree wt = MakeWorkTree(tree, to_orig);
    {
      obs::ScopedTimer timer(obs::GetHistogram("heuristics.shrink.combine_ns"));
      CombineUntil(&wt, limit);
    }
    IndexTree combined;
    std::vector<std::vector<NodeId>> expansions;
    EmitWorkTree(wt, tree.root(), &combined, kInvalidNode, &expansions);
    BCAST_RETURN_IF_ERROR(combined.Finalize());
    DataTreeOptions dt_options;
    auto search = DataTreeSearch::Create(combined, dt_options);
    if (!search.ok()) return search.status();
    auto optimal = search->FindOptimal();
    if (!optimal.ok()) return optimal.status();
    std::vector<NodeId> order;
    for (const auto& slot : optimal->slots) {
      for (NodeId id : slot) {
        const auto& exp = expansions[static_cast<size_t>(id)];
        order.insert(order.end(), exp.begin(), exp.end());
      }
    }
    return order;
  }

  // Tree partitioning: solve each root subtree independently; merge in the
  // paper's sorted order.
  obs::GetCounter("heuristics.shrink.partitions").Increment();
  NodeId root = tree.root();
  if (tree.is_data(root)) {
    return std::vector<NodeId>{to_orig[static_cast<size_t>(root)]};
  }
  std::vector<NodeId> order = {to_orig[static_cast<size_t>(root)]};
  for (NodeId child : SortedChildren(tree, root)) {
    if (tree.is_data(child)) {
      order.push_back(to_orig[static_cast<size_t>(child)]);
      continue;
    }
    IndexTree sub;
    std::vector<NodeId> sub_to_orig;
    ExtractSubtree(tree, child, to_orig, &sub, &sub_to_orig, kInvalidNode);
    BCAST_RETURN_IF_ERROR(sub.Finalize());
    auto sub_order = ShrinkSolveOrder(sub, sub_to_orig, options, num_channels);
    if (!sub_order.ok()) return sub_order.status();
    order.insert(order.end(), sub_order->begin(), sub_order->end());
  }
  return order;
}

}  // namespace

Result<AllocationResult> ShrinkingHeuristic(const IndexTree& tree,
                                            int num_channels,
                                            const ShrinkOptions& options) {
  if (!tree.finalized()) {
    return FailedPreconditionError("index tree must be finalized");
  }
  if (num_channels < 1) return InvalidArgumentError("need at least one channel");
  if (options.exact_size_limit < 1 || options.exact_size_limit > 64) {
    return InvalidArgumentError("exact_size_limit must be in [1, 64]");
  }

  obs::ScopedSpan span("heuristics.shrink");
  obs::ScopedTimer total_timer(obs::GetHistogram("heuristics.shrink.total_ns"));
  std::vector<NodeId> identity(static_cast<size_t>(tree.num_nodes()));
  for (NodeId id = 0; id < tree.num_nodes(); ++id) {
    identity[static_cast<size_t>(id)] = id;
  }
  auto order = ShrinkSolveOrder(tree, identity, options, num_channels);
  if (!order.ok()) return order.status();

  AllocationResult result;
  {
    obs::ScopedTimer timer(obs::GetHistogram("heuristics.shrink.pack_ns"));
    result.slots = PackLinearOrder(tree, num_channels, *order);
  }
  BCAST_RETURN_IF_ERROR(ValidateSlotSequence(tree, num_channels, result.slots));
  result.average_data_wait = SlotSequenceDataWait(tree, result.slots);
  result.provenance = PlanProvenance::kHeuristic;
  result.cost_upper_bound = result.average_data_wait;
  result.cost_lower_bound = DataWaitLowerBound(tree, num_channels);
  BCAST_DCHECK_OK(AllocationVerifier(tree)
                      .VerifySlots(num_channels, result.slots,
                                   result.average_data_wait)
                      .ToStatus());
  return result;
}

}  // namespace bcast
