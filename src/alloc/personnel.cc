#include "alloc/personnel.h"

#include <algorithm>
#include <limits>
#include <string>

#include "util/check.h"

namespace bcast {

namespace {

uint64_t Bit(int i) { return uint64_t{1} << i; }

Status ValidateProblem(const PersonnelAssignmentProblem& problem) {
  if (problem.num_jobs < 1) return InvalidArgumentError("no jobs");
  if (problem.num_jobs > 64) {
    return InvalidArgumentError("PAP solver supports at most 64 jobs");
  }
  if (static_cast<int>(problem.cost.size()) != problem.num_jobs) {
    return InvalidArgumentError("cost matrix must have one row per job");
  }
  for (const auto& row : problem.cost) {
    if (static_cast<int>(row.size()) != problem.num_jobs) {
      return InvalidArgumentError("cost matrix must be square");
    }
  }
  for (const auto& [a, b] : problem.precedence) {
    if (a < 0 || b < 0 || a >= problem.num_jobs || b >= problem.num_jobs ||
        a == b) {
      return InvalidArgumentError("precedence edge out of range");
    }
  }
  return Status::Ok();
}

// Branch-and-bound state shared across the recursion.
struct PapSearch {
  const PersonnelAssignmentProblem* problem;
  int n;
  std::vector<uint64_t> predecessor_mask;  // per job
  // suffix_min[i][t] = min over persons p >= t of cost[i][p].
  std::vector<std::vector<double>> suffix_min;
  uint64_t max_expansions;

  SearchStats stats;
  double best_cost = std::numeric_limits<double>::infinity();
  std::vector<int> assignment;       // person -> job along the current path
  std::vector<int> best_assignment;  // person -> job

  double Bound(uint64_t assigned, int next_person) const {
    double bound = 0.0;
    for (int i = 0; i < n; ++i) {
      if ((assigned & Bit(i)) == 0) {
        bound += suffix_min[static_cast<size_t>(i)][static_cast<size_t>(next_person)];
      }
    }
    return bound;
  }

  Status Dfs(uint64_t assigned, int person, double cost_so_far) {
    ++stats.nodes_expanded;
    if (stats.nodes_expanded > max_expansions) {
      return ResourceExhaustedError("PAP search exceeded " +
                                    std::to_string(max_expansions) +
                                    " expansions");
    }
    if (person == n) {
      ++stats.paths_completed;
      if (cost_so_far < best_cost) {
        best_cost = cost_so_far;
        best_assignment = assignment;
      }
      return Status::Ok();
    }
    for (int job = 0; job < n; ++job) {
      if ((assigned & Bit(job)) != 0) continue;
      // Eligible iff all predecessors already assigned.
      if ((predecessor_mask[static_cast<size_t>(job)] & ~assigned) != 0) {
        continue;
      }
      double next_cost =
          cost_so_far +
          problem->cost[static_cast<size_t>(job)][static_cast<size_t>(person)];
      if (next_cost + Bound(assigned | Bit(job), person + 1) >= best_cost) {
        ++stats.nodes_pruned;
        continue;
      }
      assignment[static_cast<size_t>(person)] = job;
      BCAST_RETURN_IF_ERROR(Dfs(assigned | Bit(job), person + 1, next_cost));
    }
    return Status::Ok();
  }
};

}  // namespace

Result<PapSolution> SolvePersonnelAssignment(
    const PersonnelAssignmentProblem& problem, const PapOptions& options) {
  BCAST_RETURN_IF_ERROR(ValidateProblem(problem));

  PapSearch search;
  search.problem = &problem;
  search.n = problem.num_jobs;
  search.max_expansions = options.max_expansions;
  search.predecessor_mask.assign(static_cast<size_t>(search.n), 0);
  for (const auto& [a, b] : problem.precedence) {
    search.predecessor_mask[static_cast<size_t>(b)] |= Bit(a);
  }
  search.suffix_min.assign(static_cast<size_t>(search.n),
                           std::vector<double>(static_cast<size_t>(search.n) + 1,
                                               0.0));
  for (int i = 0; i < search.n; ++i) {
    auto& row = search.suffix_min[static_cast<size_t>(i)];
    row[static_cast<size_t>(search.n)] =
        std::numeric_limits<double>::infinity();
    for (int t = search.n - 1; t >= 0; --t) {
      row[static_cast<size_t>(t)] =
          std::min(row[static_cast<size_t>(t) + 1],
                   problem.cost[static_cast<size_t>(i)][static_cast<size_t>(t)]);
    }
  }
  search.assignment.assign(static_cast<size_t>(search.n), -1);

  BCAST_RETURN_IF_ERROR(search.Dfs(0, 0, 0.0));
  if (search.best_cost == std::numeric_limits<double>::infinity()) {
    // No complete topological order exists: the precedence relation is
    // cyclic (every acyclic relation admits an order).
    return InvalidArgumentError("precedence relation contains a cycle");
  }

  PapSolution solution;
  solution.total_cost = search.best_cost;
  solution.stats = search.stats;
  solution.person_of_job.assign(static_cast<size_t>(search.n), -1);
  for (int person = 0; person < search.n; ++person) {
    solution.person_of_job[static_cast<size_t>(
        search.best_assignment[static_cast<size_t>(person)])] = person;
  }
  return solution;
}

PersonnelAssignmentProblem PapFromIndexTree(const IndexTree& tree) {
  BCAST_CHECK(tree.finalized());
  PersonnelAssignmentProblem problem;
  problem.num_jobs = tree.num_nodes();
  for (NodeId id = 0; id < tree.num_nodes(); ++id) {
    NodeId parent = tree.parent(id);
    if (parent != kInvalidNode) problem.precedence.push_back({parent, id});
  }
  problem.cost.assign(static_cast<size_t>(problem.num_jobs),
                      std::vector<double>(static_cast<size_t>(problem.num_jobs),
                                          0.0));
  for (NodeId id = 0; id < tree.num_nodes(); ++id) {
    if (!tree.is_data(id)) continue;
    for (int slot = 0; slot < problem.num_jobs; ++slot) {
      // Persons are the 1-based broadcast slots (T(d) of formula 1).
      problem.cost[static_cast<size_t>(id)][static_cast<size_t>(slot)] =
          tree.weight(id) * static_cast<double>(slot + 1);
    }
  }
  return problem;
}

PersonnelAssignmentProblem PapFromWeightedDag(
    const std::vector<double>& weights,
    const std::vector<std::pair<int, int>>& edges) {
  PersonnelAssignmentProblem problem;
  problem.num_jobs = static_cast<int>(weights.size());
  problem.precedence = edges;
  problem.cost.assign(weights.size(),
                      std::vector<double>(weights.size(), 0.0));
  for (size_t i = 0; i < weights.size(); ++i) {
    for (size_t j = 0; j < weights.size(); ++j) {
      problem.cost[i][j] = weights[i] * static_cast<double>(j + 1);
    }
  }
  return problem;
}

}  // namespace bcast
