#include "alloc/topo_search.h"

#include <algorithm>
#include <bit>
#include <limits>
#include <queue>
#include <string>
#include <unordered_map>

#include "obs/obs.h"
#include "util/check.h"
#include "verify/verifier.h"

namespace bcast {

namespace {

// Iterates the node ids set in a compound-set bitmask.
template <typename Fn>
void ForEachBit(uint64_t set, Fn fn) {
  while (set != 0) {
    int id = __builtin_ctzll(set);
    fn(static_cast<NodeId>(id));
    set &= set - 1;
  }
}

uint64_t Bit(NodeId id) { return uint64_t{1} << id; }

// Emits every k-element subset of items[0..n-1] as a bitmask, in the same
// lexicographic index order as util/combinatorics.h's ForEachKSubset (whole
// set once when k >= n). Pure stack state — the hot loop's replacement for
// the std::function/vector-based enumerator.
template <typename Fn>
void ForEachKSubsetMask(const NodeId* items, int n, int k, Fn emit) {
  if (n == 0) return;
  if (k >= n) {
    uint64_t sm = 0;
    for (int i = 0; i < n; ++i) sm |= Bit(items[i]);
    emit(sm);
    return;
  }
  int idx[64];
  for (int i = 0; i < k; ++i) idx[i] = i;
  while (true) {
    uint64_t sm = 0;
    for (int i = 0; i < k; ++i) sm |= Bit(items[idx[i]]);
    emit(sm);
    // Advance to the next combination.
    int i = k;
    bool advanced = false;
    while (i-- > 0) {
      if (idx[i] != i + n - k) {
        ++idx[i];
        for (int j = i + 1; j < k; ++j) idx[j] = idx[j - 1] + 1;
        advanced = true;
        break;
      }
    }
    if (!advanced) return;
  }
}

}  // namespace

Result<TopoTreeSearch> TopoTreeSearch::Create(const IndexTree& tree,
                                              Options options) {
  if (!tree.finalized()) {
    return FailedPreconditionError("index tree must be finalized");
  }
  if (tree.num_nodes() > 64) {
    return InvalidArgumentError(
        "exact topological-tree search supports at most 64 nodes, got " +
        std::to_string(tree.num_nodes()) +
        " (use the heuristics for larger trees)");
  }
  if (options.num_channels < 1) {
    return InvalidArgumentError("need at least one broadcast channel");
  }
  return TopoTreeSearch(tree, options);
}

TopoTreeSearch::TopoTreeSearch(const IndexTree& tree, Options options)
    : tree_(tree), options_(options) {
  int n = tree.num_nodes();
  full_mask_ = n == 64 ? ~uint64_t{0} : (uint64_t{1} << n) - 1;
  data_by_weight_ = tree.DataNodes();
  std::sort(data_by_weight_.begin(), data_by_weight_.end(),
            [&](NodeId a, NodeId b) {
              if (tree_.weight(a) != tree_.weight(b)) {
                return tree_.weight(a) > tree_.weight(b);
              }
              return a < b;
            });

  weight_.resize(static_cast<size_t>(n));
  children_mask_.assign(static_cast<size_t>(n), 0);
  higher_rank_mask_.assign(static_cast<size_t>(n), 0);
  for (NodeId id = 0; id < n; ++id) {
    weight_[static_cast<size_t>(id)] = tree.weight(id);
    if (tree.is_data(id)) {
      data_mask_ |= Bit(id);
    } else {
      index_mask_ |= Bit(id);
    }
    for (NodeId child : tree.children(id)) {
      children_mask_[static_cast<size_t>(id)] |= Bit(child);
    }
  }
  for (NodeId x = 0; x < n; ++x) {
    if (!tree.is_index(x)) continue;
    uint64_t higher = 0;
    ForEachBit(index_mask_, [&](NodeId y) {
      if (tree.node(y).preorder_rank > tree.node(x).preorder_rank) {
        higher |= Bit(y);
      }
    });
    higher_rank_mask_[static_cast<size_t>(x)] = higher;
  }
  // One neighbor arena per possible DFS depth (a path has at most n compound
  // sets plus the root slot).
  level_scratch_.resize(static_cast<size_t>(n) + 2);
}

// bcast: hot — canonical sibling order, called per generated neighbor.
bool TopoTreeSearch::SubsetLess(uint64_t a, uint64_t b) const {
  const double wa = SetDataWeight(a);
  const double wb = SetDataWeight(b);
  if (wa != wb) return wa > wb;
  return a < b;
}

// bcast: hot — inner loop of expansion and bounding.
double TopoTreeSearch::SetDataWeight(uint64_t set) const {
  // Ascending-id accumulation, like the pre-bitmask implementation, so every
  // committed golden ADW double is reproduced bit for bit.
  double sum = 0.0;
  ForEachBit(set & data_mask_,
             [&](NodeId id) { sum += weight_[static_cast<size_t>(id)]; });
  return sum;
}

// bcast: hot — per-expansion candidate set, pure mask algebra.
uint64_t TopoTreeSearch::CandidateMask(uint64_t mask) const {
  uint64_t cand = 0;
  ForEachBit(mask,
             [&](NodeId id) { cand |= children_mask_[static_cast<size_t>(id)]; });
  return cand & ~mask;
}

void TopoTreeSearch::GenerateNeighbors(uint64_t mask, uint64_t last_set,
                                       std::vector<uint64_t>* out,
                                       SearchStats* stats) const {
  out->clear();
  uint64_t cand = CandidateMask(mask);
  if (cand == 0) return;

  const int k = options_.num_channels;

  // Properties of the previous compound node P, all as mask algebra: its
  // data members, the union of its children, its lightest data weight.
  const uint64_t p_data = last_set & data_mask_;
  const bool p_all_index = p_data == 0;
  double p_min_data_weight = std::numeric_limits<double>::infinity();
  ForEachBit(p_data, [&](NodeId id) {
    p_min_data_weight =
        std::min(p_min_data_weight, weight_[static_cast<size_t>(id)]);
  });
  uint64_t children_of_p = 0;
  ForEachBit(last_set, [&](NodeId id) {
    children_of_p |= children_mask_[static_cast<size_t>(id)];
  });

  // ---- Appendix Step 2: prune the candidate set. --------------------------
  if (options_.prune_candidates) {
    const int candidates_before = std::popcount(cand);
    if (p_all_index) {
      if (k == 1) {
        // Case 1(i): only children of p; among data children only the
        // heaviest (Property 2, characteristic 1). data_by_weight_ is sorted
        // weight-descending with ascending-id ties, so the first hit is the
        // canonical heaviest data child.
        uint64_t kept = cand & children_of_p & index_mask_;
        const uint64_t data_children = cand & children_of_p & data_mask_;
        if (data_children != 0) {
          for (NodeId d : data_by_weight_) {
            if ((data_children & Bit(d)) != 0) {
              kept |= Bit(d);
              break;
            }
          }
        }
        cand = kept;
      } else {
        // Case 1(ii): drop data that are not children of P; keep only the k
        // heaviest remaining data (Property 3, characteristics 1/2).
        uint64_t kept = cand & index_mask_;
        const uint64_t data_children = cand & children_of_p & data_mask_;
        int taken = 0;
        for (NodeId d : data_by_weight_) {
          if (taken == k) break;
          if ((data_children & Bit(d)) != 0) {
            kept |= Bit(d);
            ++taken;
          }
        }
        cand = kept;
      }
    } else {
      // Case 2: drop data nodes that are not children of P but are heavier
      // than some data node in P (Property 3, characteristic 4 / Property 2,
      // characteristic 2).
      uint64_t drop = 0;
      ForEachBit(cand & data_mask_ & ~children_of_p, [&](NodeId id) {
        if (weight_[static_cast<size_t>(id)] > p_min_data_weight) {
          drop |= Bit(id);
        }
      });
      cand &= ~drop;
    }
    const int dropped = candidates_before - std::popcount(cand);
    if (stats != nullptr && dropped > 0) {
      // Candidate-level drops (they never become subsets, so they are not
      // part of nodes_generated / nodes_pruned): Property 2 justifies the
      // single-channel characterizations, Property 3 the k > 1 ones.
      if (k == 1) {
        stats->pruned_by_rule.property2 += static_cast<uint64_t>(dropped);
      } else {
        stats->pruned_by_rule.property3 += static_cast<uint64_t>(dropped);
      }
    }
    if (cand == 0) return;  // dead end; a sibling branch survives
  }

  const int num_candidates = std::popcount(cand);
  const int t = std::min(k, num_candidates);

  // ---- Appendix Step 3: generate the k-component subsets. -----------------
  if (!options_.prune_candidates) {
    // Plain Algorithm 1: every t-subset, enumerated straight off the
    // candidate mask (ascending-id item order, lexicographic combinations —
    // the same sequence the vector-based enumerator produced).
    NodeId items[64];
    int n_items = 0;
    ForEachBit(cand, [&](NodeId id) { items[n_items++] = id; });
    ForEachKSubsetMask(items, n_items, t,
                       [&](uint64_t sm) { out->push_back(sm); });
  } else {
    // Rule (i): the n data nodes of a subset must be the n heaviest data
    // candidates, so data enter as a prefix of the weight-sorted list.
    NodeId data_sorted[64];
    int num_data = 0;
    const uint64_t cand_data = cand & data_mask_;
    if (cand_data != 0) {
      for (NodeId d : data_by_weight_) {
        if ((cand_data & Bit(d)) != 0) data_sorted[num_data++] = d;
      }
    }
    NodeId index_items[64];
    int num_index = 0;
    ForEachBit(cand & index_mask_,
               [&](NodeId id) { index_items[num_index++] = id; });

    int min_data = (num_data >= t && num_index == 0) ? t : 0;
    if (t > num_index) min_data = std::max(min_data, t - num_index);
    for (int d = min_data; d <= std::min(t, num_data); ++d) {
      uint64_t data_prefix = 0;
      for (int i = 0; i < d; ++i) data_prefix |= Bit(data_sorted[i]);
      const int want_index = t - d;
      if (want_index > num_index) continue;
      if (want_index == 0) {
        out->push_back(data_prefix);
        continue;
      }
      ForEachKSubsetMask(index_items, num_index, want_index, [&](uint64_t sm) {
        out->push_back(data_prefix | sm);
      });
    }
  }

  // nodes_generated counts every formed subset, including those the Step 3
  // rule (ii) and Step 4 filters below then eliminate, so for the
  // sequential DFS nodes_expanded == 1 + nodes_generated - nodes_pruned -
  // bound_cutoffs holds exactly (the differential harness asserts it).
  if (stats != nullptr) stats->nodes_generated += out->size();

  // Rule (ii): with an all-index P and k > 1, a subset must contain at
  // least one child of an element of P. In-place compaction keeps order.
  if (options_.prune_candidates && p_all_index && k != 1) {
    size_t write = 0;
    for (size_t read = 0; read < out->size(); ++read) {
      const uint64_t sm = (*out)[read];
      if ((sm & children_of_p) == 0) {
        if (stats != nullptr) {
          ++stats->nodes_pruned;
          ++stats->pruned_by_rule.lemma3;
        }
        continue;
      }
      (*out)[write++] = sm;
    }
    out->resize(write);
  }

  // ---- Appendix Step 4: local-swap elimination. ----------------------------
  if (options_.prune_local_swap) {
    const uint64_t p_index = last_set & index_mask_;
    if (p_index != 0) {
      size_t write = 0;
      for (size_t read = 0; read < out->size(); ++read) {
        const uint64_t subset = (*out)[read];
        bool pruned = false;
        bool data_swap = false;
        // x scans P's index members in ascending id, like the old loop; the
        // first x that admits a swap decides the lemma attribution.
        for (uint64_t xs = p_index; xs != 0 && !pruned; xs &= xs - 1) {
          const NodeId x = static_cast<NodeId>(__builtin_ctzll(xs));
          // x can move down only if none of its children sit in the subset.
          if ((subset & children_mask_[static_cast<size_t>(x)]) != 0) continue;
          // Swappable members of the subset: not children of P, and either a
          // data node (Step 4(i), Lemma 4: swapping it one slot earlier with
          // x is strictly better) or an index node of higher preorder rank
          // (Step 4(ii), Lemma 5: keep only the canonical order). The lowest
          // such bit is the first qualifying y of the old per-node scan.
          const uint64_t swappable =
              subset & ~children_of_p &
              (data_mask_ | higher_rank_mask_[static_cast<size_t>(x)]);
          if (swappable != 0) {
            pruned = true;
            data_swap = (swappable & (~swappable + 1) & data_mask_) != 0;
          }
        }
        if (pruned) {
          if (stats != nullptr) {
            ++stats->nodes_pruned;
            if (data_swap) {
              ++stats->pruned_by_rule.lemma4;
            } else {
              ++stats->pruned_by_rule.lemma5;
            }
          }
          continue;
        }
        (*out)[write++] = subset;
      }
      out->resize(write);
    }
  }
}

// bcast: hot — admissible bound, evaluated per child.
double TopoTreeSearch::LowerBound(uint64_t mask, int depth) const {
  const int k = options_.num_channels;
  double bound = 0.0;
  if (options_.bound == BoundKind::kPaperNextSlot) {
    for (NodeId d : data_by_weight_) {
      if ((mask & Bit(d)) == 0) {
        bound += tree_.weight(d) * static_cast<double>(depth + 1);
      }
    }
    return bound;
  }
  // Packed bound: heaviest remaining data first, k per slot.
  int slot = depth + 1;
  int in_slot = 0;
  for (NodeId d : data_by_weight_) {
    if ((mask & Bit(d)) != 0) continue;
    bound += tree_.weight(d) * static_cast<double>(slot);
    if (++in_slot == k) {
      ++slot;
      in_slot = 0;
    }
  }
  return bound;
}

// ---------------------------------------------------------------------------
// Depth-first traversal (counting and branch-and-bound)
// ---------------------------------------------------------------------------

struct TopoTreeSearch::DfsContext {
  enum class Mode { kCountPaths, kCountNodes, kOptimize };
  Mode mode = Mode::kOptimize;
  uint64_t limit = 0;  // for the counting modes
  uint64_t count = 0;
  SearchStats stats;
  double best_v = std::numeric_limits<double>::infinity();
  // Incumbent seed (a known-feasible total weighted wait). Children are cut
  // when est > seed_bound — strictly, so equal-cost optima survive and the
  // result stays byte-identical to the unseeded search.
  double seed_bound = std::numeric_limits<double>::infinity();
  // Anytime budget (kOptimize only; null = run to completion). Once a stop
  // condition fires, `stopped` latches and every remaining frame folds its
  // state's admissible estimate into frontier_lower instead of recursing, so
  // min(frontier_lower, best_v) is a valid lower bound on the true optimum.
  const SearchBudget* budget = nullptr;
  uint64_t deadline_abs_ns = 0;
  obs::Clock* clock = nullptr;
  bool stopped = false;
  double frontier_lower = std::numeric_limits<double>::infinity();
  std::vector<uint64_t> current_path;
  std::vector<uint64_t> best_path;
  // Per-depth neighbor arenas (the search object's level_scratch_). Depth d
  // borrows levels[d]; the recursive call at depth + 1 uses the next entry,
  // so no frame ever aliases another and nothing is copied between levels.
  std::vector<std::vector<uint64_t>>* levels = nullptr;
};

Status TopoTreeSearch::Dfs(DfsContext* ctx, uint64_t mask, uint64_t last_set,
                           int depth, double v) {
  if (ctx->budget != nullptr) {
    // Soft budget checks run BEFORE the expansion is counted, so an
    // expansion budget of N expands exactly N states — the deterministic
    // contract tests rely on. The deadline is polled every 1024 expansions
    // (and on entry, so a pre-expired deadline stops immediately); the
    // cancel token every expansion.
    if (!ctx->stopped) {
      const SearchBudget& budget = *ctx->budget;
      if (budget.cancel != nullptr && budget.cancel->cancelled()) {
        ctx->stopped = true;
      } else if (budget.max_expansions > 0 &&
                 ctx->stats.nodes_expanded >= budget.max_expansions) {
        ctx->stopped = true;
      } else if (ctx->deadline_abs_ns != 0 &&
                 (ctx->stats.nodes_expanded & 1023) == 0 &&
                 ctx->clock->NowNanos() >= ctx->deadline_abs_ns) {
        ctx->stopped = true;
      }
    }
    if (ctx->stopped) {
      // Abandoned subtree: its cheapest completion costs at least the
      // admissible estimate V + U, folded into the reported lower bound.
      ctx->frontier_lower =
          std::min(ctx->frontier_lower, v + LowerBound(mask, depth));
      return Status::Ok();
    }
  }
  ++ctx->stats.nodes_expanded;
  if (ctx->stats.nodes_expanded > options_.max_expansions) {
    return ResourceExhaustedError("topological-tree search exceeded " +
                                  std::to_string(options_.max_expansions) +
                                  " expansions");
  }
  if (ctx->mode == DfsContext::Mode::kCountNodes) {
    ++ctx->count;
    if (ctx->count > ctx->limit) {
      return ResourceExhaustedError("more than " + std::to_string(ctx->limit) +
                                    " topological-tree nodes");
    }
  }
  if (mask == full_mask_) {
    ++ctx->stats.paths_completed;
    if (ctx->mode == DfsContext::Mode::kCountPaths) {
      ++ctx->count;
      if (ctx->count > ctx->limit) {
        return ResourceExhaustedError("more than " + std::to_string(ctx->limit) +
                                      " topological-tree paths");
      }
    } else if (ctx->mode == DfsContext::Mode::kOptimize && v < ctx->best_v) {
      ctx->best_v = v;
      ctx->best_path = ctx->current_path;
      ++ctx->stats.incumbent_updates;
    }
    return Status::Ok();
  }

  std::vector<uint64_t>& neighbors = (*ctx->levels)[static_cast<size_t>(depth)];
  GenerateNeighbors(mask, last_set, &neighbors, &ctx->stats);
  if (ctx->mode == DfsContext::Mode::kOptimize) {
    // Visit promising neighbors first so the incumbent tightens quickly. The
    // canonical order (not just weight-descending) pins which equal-cost
    // optimum is found first, so the parallel engine can reproduce it.
    std::sort(neighbors.begin(), neighbors.end(),
              [&](uint64_t a, uint64_t b) { return SubsetLess(a, b); });
  }
  for (size_t i = 0; i < neighbors.size(); ++i) {
    const uint64_t subset = neighbors[i];
    double nv = v + SetDataWeight(subset) * static_cast<double>(depth + 1);
    if (ctx->mode == DfsContext::Mode::kOptimize) {
      // Lemmas 1/2: V + U is a lower bound on any completion through subset.
      const double est = nv + LowerBound(mask | subset, depth + 1);
      if (est >= ctx->best_v || est > ctx->seed_bound) {
        ++ctx->stats.bound_cutoffs;
        continue;
      }
    }
    ctx->current_path.push_back(subset);
    Status status = Dfs(ctx, mask | subset, subset, depth + 1, nv);
    ctx->current_path.pop_back();
    BCAST_RETURN_IF_ERROR(status);
  }
  return Status::Ok();
}

SlotSequence CompoundPathToSlots(NodeId root,
                                 const std::vector<uint64_t>& path) {
  SlotSequence slots;
  slots.push_back({root});
  for (uint64_t set : path) {
    std::vector<NodeId> slot;
    ForEachBit(set, [&](NodeId id) { slot.push_back(id); });
    slots.push_back(std::move(slot));
  }
  return slots;
}

Result<uint64_t> TopoTreeSearch::CountPaths(uint64_t limit) {
  DfsContext ctx;
  ctx.mode = DfsContext::Mode::kCountPaths;
  ctx.limit = limit;
  ctx.levels = &level_scratch_;
  NodeId root = tree_.root();
  double v0 = tree_.is_data(root) ? tree_.weight(root) : 0.0;
  BCAST_RETURN_IF_ERROR(Dfs(&ctx, Bit(root), Bit(root), 1, v0));
  return ctx.count;
}

Result<uint64_t> TopoTreeSearch::CountTreeNodes(uint64_t limit) {
  DfsContext ctx;
  ctx.mode = DfsContext::Mode::kCountNodes;
  ctx.limit = limit;
  ctx.levels = &level_scratch_;
  NodeId root = tree_.root();
  double v0 = tree_.is_data(root) ? tree_.weight(root) : 0.0;
  BCAST_RETURN_IF_ERROR(Dfs(&ctx, Bit(root), Bit(root), 1, v0));
  return ctx.count;
}

Result<SearchStats> TopoTreeSearch::ReducedTreeStats(uint64_t limit) {
  // Full enumeration of the reduced tree (no bound, no incumbent), so the
  // per-rule counts depend only on the tree and the options — in particular
  // they are identical whatever thread count the optimizing engine used.
  DfsContext ctx;
  ctx.mode = DfsContext::Mode::kCountNodes;
  ctx.limit = limit;
  ctx.levels = &level_scratch_;
  NodeId root = tree_.root();
  double v0 = tree_.is_data(root) ? tree_.weight(root) : 0.0;
  BCAST_RETURN_IF_ERROR(Dfs(&ctx, Bit(root), Bit(root), 1, v0));
  return ctx.stats;
}

Result<AllocationResult> TopoTreeSearch::FindOptimalDfs(
    double seed_cost_v, const SearchBudget* budget) {
  DfsContext ctx;
  ctx.mode = DfsContext::Mode::kOptimize;
  ctx.seed_bound = seed_cost_v;
  ctx.levels = &level_scratch_;
  if (budget != nullptr && budget->active()) {
    ctx.budget = budget;
    ctx.clock =
        budget->clock != nullptr ? budget->clock : obs::MonotonicClock();
    if (budget->deadline_ns > 0) {
      ctx.deadline_abs_ns = ctx.clock->NowNanos() + budget->deadline_ns;
    }
  }
  const size_t max_path = static_cast<size_t>(tree_.num_nodes()) + 1;
  ctx.current_path.reserve(max_path);
  ctx.best_path.reserve(max_path);
  NodeId root = tree_.root();
  double v0 = tree_.is_data(root) ? tree_.weight(root) : 0.0;
  BCAST_RETURN_IF_ERROR(Dfs(&ctx, Bit(root), Bit(root), 1, v0));
  if (ctx.best_v == std::numeric_limits<double>::infinity()) {
    if (ctx.stopped) {
      return ResourceExhaustedError(
          "search budget exhausted before any feasible allocation was "
          "completed");
    }
    return InternalError("no feasible allocation found (pruning dead end)");
  }
  AllocationResult result;
  result.slots = CompoundPathToSlots(root, ctx.best_path);
  result.average_data_wait = ctx.best_v / tree_.total_data_weight();
  result.stats = ctx.stats;
  const double total_weight = tree_.total_data_weight();
  if (ctx.stopped) {
    result.provenance = PlanProvenance::kAnytime;
    result.cost_upper_bound = result.average_data_wait;
    // The optimum's path was completed, bound-cut (both imply best_v is
    // optimal) or abandoned — and then folded into frontier_lower.
    result.cost_lower_bound =
        std::min(ctx.frontier_lower, ctx.best_v) / total_weight;
    obs::GetCounter("search.topo_dfs.anytime_stops").Increment();
  } else {
    result.provenance = PlanProvenance::kExact;
    result.cost_lower_bound = result.average_data_wait;
    result.cost_upper_bound = result.average_data_wait;
  }
  EmitSearchStats("search.topo_dfs", result.stats);
  // Debug builds statically verify every search product: feasibility of the
  // slot sequence and the accumulated V against an independent recount.
  BCAST_DCHECK_OK(AllocationVerifier(tree_)
                      .VerifySlots(options_.num_channels, result.slots,
                                   result.average_data_wait)
                      .ToStatus());
  return result;
}

// ---------------------------------------------------------------------------
// Best-first search (the paper's Section 3.1 strategy)
// ---------------------------------------------------------------------------

Result<AllocationResult> TopoTreeSearch::FindOptimalBestFirst(
    double seed_cost_v) {
  struct ArenaNode {
    uint64_t mask;
    uint64_t last_set;
    double v;
    int depth;
    int parent;  // arena index, -1 for the root
  };
  struct QueueEntry {
    double e;  // E(X) = V(X) + U(X)
    double v;
    int arena_index;
    bool operator>(const QueueEntry& other) const {
      if (e != other.e) return e > other.e;
      return v > other.v;
    }
  };

  SearchStats stats;
  std::vector<ArenaNode> arena;
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>> open;

  NodeId root = tree_.root();
  double v0 = tree_.is_data(root) ? tree_.weight(root) : 0.0;
  arena.push_back({Bit(root), Bit(root), v0, 1, -1});
  open.push({v0 + LowerBound(Bit(root), 1), v0, 0});

  // Dominance: a state is skippable if an already-seen state with the same
  // key has both depth' <= depth and v' <= v. Without pruning the neighbor
  // set depends only on the allocated mask, so the key is the mask alone;
  // with pruning it also depends on the previous compound node.
  const bool pruning = options_.prune_candidates || options_.prune_local_swap;
  struct Seen {
    int depth;
    double v;
  };
  std::unordered_map<uint64_t, std::vector<Seen>> seen;
  auto state_key = [&](uint64_t mask, uint64_t last_set) -> uint64_t {
    if (!pruning) return mask;
    return mask ^ (last_set * uint64_t{0x9E3779B97F4A7C15});
  };
  auto dominated = [&](uint64_t key, int depth, double v) {
    auto it = seen.find(key);
    if (it == seen.end()) return false;
    for (const Seen& s : it->second) {
      if (s.depth <= depth && s.v <= v + 1e-12) return true;
    }
    return false;
  };

  std::vector<uint64_t> neighbors;
  while (!open.empty()) {
    QueueEntry top = open.top();
    open.pop();
    const ArenaNode node = arena[static_cast<size_t>(top.arena_index)];
    if (node.mask == full_mask_) {
      // First goal popped: optimal because E is a lower bound on total cost.
      std::vector<uint64_t> path;
      int cur = top.arena_index;
      while (arena[static_cast<size_t>(cur)].parent != -1) {
        path.push_back(arena[static_cast<size_t>(cur)].last_set);
        cur = arena[static_cast<size_t>(cur)].parent;
      }
      std::reverse(path.begin(), path.end());
      AllocationResult result;
      result.slots = CompoundPathToSlots(root, path);
      result.average_data_wait = node.v / tree_.total_data_weight();
      result.cost_lower_bound = result.average_data_wait;
      result.cost_upper_bound = result.average_data_wait;
      result.stats = stats;
      result.stats.paths_completed = 1;
      EmitSearchStats("search.topo_best_first", result.stats);
      BCAST_DCHECK_OK(AllocationVerifier(tree_)
                          .VerifySlots(options_.num_channels, result.slots,
                                       result.average_data_wait)
                          .ToStatus());
      return result;
    }
    uint64_t key = state_key(node.mask, node.last_set);
    if (dominated(key, node.depth, node.v)) {
      ++stats.dominance_skips;
      continue;
    }
    seen[key].push_back({node.depth, node.v});

    ++stats.nodes_expanded;
    if (stats.nodes_expanded > options_.max_expansions) {
      return ResourceExhaustedError("best-first search exceeded " +
                                    std::to_string(options_.max_expansions) +
                                    " expansions");
    }
    GenerateNeighbors(node.mask, node.last_set, &neighbors, &stats);
    for (uint64_t subset : neighbors) {
      uint64_t child_mask = node.mask | subset;
      int child_depth = node.depth + 1;
      double child_v =
          node.v + SetDataWeight(subset) * static_cast<double>(child_depth);
      uint64_t child_key = state_key(child_mask, subset);
      if (dominated(child_key, child_depth, child_v)) {
        ++stats.dominance_skips;
        continue;
      }
      const double child_e = child_v + LowerBound(child_mask, child_depth);
      if (child_e > seed_cost_v) {
        // The seed is the cost of a known feasible allocation, so no optimum
        // lies beyond it (strict >: equal-cost states stay in play).
        ++stats.bound_cutoffs;
        continue;
      }
      arena.push_back({child_mask, subset, child_v, child_depth, top.arena_index});
      open.push({child_e, child_v, static_cast<int>(arena.size()) - 1});
    }
  }
  return InternalError("best-first search exhausted the open list");
}

}  // namespace bcast
