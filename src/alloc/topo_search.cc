#include "alloc/topo_search.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <string>
#include <unordered_map>

#include "util/check.h"
#include "util/combinatorics.h"
#include "verify/verifier.h"

namespace bcast {

namespace {

// Iterates the node ids set in a compound-set bitmask.
template <typename Fn>
void ForEachBit(uint64_t set, Fn fn) {
  while (set != 0) {
    int id = __builtin_ctzll(set);
    fn(static_cast<NodeId>(id));
    set &= set - 1;
  }
}

uint64_t Bit(NodeId id) { return uint64_t{1} << id; }

}  // namespace

Result<TopoTreeSearch> TopoTreeSearch::Create(const IndexTree& tree,
                                              Options options) {
  if (!tree.finalized()) {
    return FailedPreconditionError("index tree must be finalized");
  }
  if (tree.num_nodes() > 64) {
    return InvalidArgumentError(
        "exact topological-tree search supports at most 64 nodes, got " +
        std::to_string(tree.num_nodes()) +
        " (use the heuristics for larger trees)");
  }
  if (options.num_channels < 1) {
    return InvalidArgumentError("need at least one broadcast channel");
  }
  return TopoTreeSearch(tree, options);
}

TopoTreeSearch::TopoTreeSearch(const IndexTree& tree, Options options)
    : tree_(tree), options_(options) {
  int n = tree.num_nodes();
  full_mask_ = n == 64 ? ~uint64_t{0} : (uint64_t{1} << n) - 1;
  data_by_weight_ = tree.DataNodes();
  std::sort(data_by_weight_.begin(), data_by_weight_.end(),
            [&](NodeId a, NodeId b) {
              if (tree_.weight(a) != tree_.weight(b)) {
                return tree_.weight(a) > tree_.weight(b);
              }
              return a < b;
            });
}

bool TopoTreeSearch::SubsetLess(uint64_t a, uint64_t b) const {
  const double wa = SetDataWeight(a);
  const double wb = SetDataWeight(b);
  if (wa != wb) return wa > wb;
  return a < b;
}

double TopoTreeSearch::SetDataWeight(uint64_t set) const {
  double sum = 0.0;
  ForEachBit(set, [&](NodeId id) {
    if (tree_.is_data(id)) sum += tree_.weight(id);
  });
  return sum;
}

void TopoTreeSearch::Candidates(uint64_t mask, std::vector<NodeId>* out) const {
  out->clear();
  for (NodeId id = 0; id < tree_.num_nodes(); ++id) {
    if ((mask & Bit(id)) != 0) continue;
    NodeId parent = tree_.parent(id);
    if (parent != kInvalidNode && (mask & Bit(parent)) != 0) out->push_back(id);
  }
}

void TopoTreeSearch::GenerateNeighbors(uint64_t mask, uint64_t last_set,
                                       std::vector<uint64_t>* out,
                                       SearchStats* stats) const {
  out->clear();
  std::vector<NodeId> candidates;
  Candidates(mask, &candidates);
  if (candidates.empty()) return;

  const size_t k = static_cast<size_t>(options_.num_channels);

  // Properties of the previous compound node P.
  bool p_all_index = true;
  double p_min_data_weight = std::numeric_limits<double>::infinity();
  ForEachBit(last_set, [&](NodeId id) {
    if (tree_.is_data(id)) {
      p_all_index = false;
      p_min_data_weight = std::min(p_min_data_weight, tree_.weight(id));
    }
  });
  auto is_child_of_p = [&](NodeId id) {
    NodeId parent = tree_.parent(id);
    return parent != kInvalidNode && (last_set & Bit(parent)) != 0;
  };

  // ---- Appendix Step 2: prune the candidate set. --------------------------
  if (options_.prune_candidates) {
    const size_t candidates_before = candidates.size();
    std::vector<NodeId> pruned;
    pruned.reserve(candidates.size());
    if (p_all_index) {
      if (k == 1) {
        // Case 1(i): only children of p; among data children only the
        // heaviest (Property 2, characteristic 1).
        NodeId best_data = kInvalidNode;
        for (NodeId id : candidates) {
          if (!is_child_of_p(id)) continue;
          if (tree_.is_index(id)) {
            pruned.push_back(id);
          } else if (best_data == kInvalidNode ||
                     tree_.weight(id) > tree_.weight(best_data) ||
                     (tree_.weight(id) == tree_.weight(best_data) &&
                      id < best_data)) {
            best_data = id;
          }
        }
        if (best_data != kInvalidNode) pruned.push_back(best_data);
      } else {
        // Case 1(ii): drop data that are not children of P; keep only the k
        // heaviest remaining data (Property 3, characteristics 1/2).
        std::vector<NodeId> data_kept;
        for (NodeId id : candidates) {
          if (tree_.is_index(id)) {
            pruned.push_back(id);
          } else if (is_child_of_p(id)) {
            data_kept.push_back(id);
          }
        }
        std::sort(data_kept.begin(), data_kept.end(), [&](NodeId a, NodeId b) {
          if (tree_.weight(a) != tree_.weight(b)) {
            return tree_.weight(a) > tree_.weight(b);
          }
          return a < b;
        });
        if (data_kept.size() > k) data_kept.resize(k);
        pruned.insert(pruned.end(), data_kept.begin(), data_kept.end());
      }
    } else {
      // Case 2: drop data nodes that are not children of P but are heavier
      // than some data node in P (Property 3, characteristic 4 / Property 2,
      // characteristic 2).
      for (NodeId id : candidates) {
        if (tree_.is_data(id) && !is_child_of_p(id) &&
            tree_.weight(id) > p_min_data_weight) {
          continue;
        }
        pruned.push_back(id);
      }
    }
    candidates = std::move(pruned);
    if (stats != nullptr && candidates_before > candidates.size()) {
      // Candidate-level drops (they never become subsets, so they are not
      // part of nodes_generated / nodes_pruned): Property 2 justifies the
      // single-channel characterizations, Property 3 the k > 1 ones.
      const uint64_t dropped = candidates_before - candidates.size();
      if (k == 1) {
        stats->pruned_by_rule.property2 += dropped;
      } else {
        stats->pruned_by_rule.property3 += dropped;
      }
    }
    if (candidates.empty()) return;  // dead end; a sibling branch survives
  }

  const size_t t = std::min(k, candidates.size());

  // ---- Appendix Step 3: generate the k-component subsets. -----------------
  std::vector<uint64_t> generated;
  if (!options_.prune_candidates) {
    // Plain Algorithm 1: every t-subset.
    ForEachKSubset<NodeId>(candidates, t,
                           [&](const std::vector<NodeId>& subset) {
                             uint64_t sm = 0;
                             for (NodeId id : subset) sm |= Bit(id);
                             generated.push_back(sm);
                           });
  } else {
    // Rule (i): the n data nodes of a subset must be the n heaviest data
    // candidates, so data enter as a prefix of the weight-sorted list.
    std::vector<NodeId> data_sorted, index_list;
    for (NodeId id : candidates) {
      (tree_.is_data(id) ? data_sorted : index_list).push_back(id);
    }
    std::sort(data_sorted.begin(), data_sorted.end(), [&](NodeId a, NodeId b) {
      if (tree_.weight(a) != tree_.weight(b)) {
        return tree_.weight(a) > tree_.weight(b);
      }
      return a < b;
    });
    size_t min_data = data_sorted.size() >= t && index_list.empty() ? t : 0;
    if (t > index_list.size()) min_data = std::max(min_data, t - index_list.size());
    for (size_t d = min_data; d <= std::min(t, data_sorted.size()); ++d) {
      uint64_t data_mask = 0;
      for (size_t i = 0; i < d; ++i) data_mask |= Bit(data_sorted[i]);
      size_t want_index = t - d;
      if (want_index > index_list.size()) continue;
      if (want_index == 0) {
        generated.push_back(data_mask);
        continue;
      }
      ForEachKSubset<NodeId>(index_list, want_index,
                             [&](const std::vector<NodeId>& subset) {
                               uint64_t sm = data_mask;
                               for (NodeId id : subset) sm |= Bit(id);
                               generated.push_back(sm);
                             });
    }
  }

  // nodes_generated counts every formed subset, including those the Step 3
  // rule (ii) and Step 4 erase_ifs below then eliminate, so for the
  // sequential DFS nodes_expanded == 1 + nodes_generated - nodes_pruned -
  // bound_cutoffs holds exactly (the differential harness asserts it).
  if (stats != nullptr) stats->nodes_generated += generated.size();

  // Rule (ii): with an all-index P and k > 1, a subset must contain at
  // least one child of an element of P.
  if (options_.prune_candidates && p_all_index && k != 1) {
    std::erase_if(generated, [&](uint64_t sm) {
      bool has_child = false;
      ForEachBit(sm, [&](NodeId id) { has_child = has_child || is_child_of_p(id); });
      if (!has_child && stats != nullptr) {
        ++stats->nodes_pruned;
        ++stats->pruned_by_rule.lemma3;
      }
      return !has_child;
    });
  }

  // ---- Appendix Step 4: local-swap elimination. ----------------------------
  if (options_.prune_local_swap) {
    std::vector<NodeId> p_index_nodes;
    ForEachBit(last_set, [&](NodeId id) {
      if (tree_.is_index(id)) p_index_nodes.push_back(id);
    });
    std::erase_if(generated, [&](uint64_t subset) {
      for (NodeId x : p_index_nodes) {
        // x can move down only if none of its children sit in the subset.
        bool child_in_subset = false;
        for (NodeId c : tree_.children(x)) {
          if ((subset & Bit(c)) != 0) {
            child_in_subset = true;
            break;
          }
        }
        if (child_in_subset) continue;
        bool data_swap = false;
        bool index_swap = false;
        ForEachBit(subset, [&](NodeId y) {
          if (data_swap || index_swap || is_child_of_p(y)) return;
          if (tree_.is_data(y)) {
            // Step 4(i), Lemma 4: a data node could be swapped one slot
            // earlier with index node x — strictly better, so this subset
            // cannot be on an optimal path.
            data_swap = true;
          } else if (tree_.node(y).preorder_rank > tree_.node(x).preorder_rank) {
            // Step 4(ii), Lemma 5: two swappable index nodes; keep only the
            // canonical order (Section 3.2's unique index weights).
            index_swap = true;
          }
        });
        if (data_swap || index_swap) {
          if (stats != nullptr) {
            ++stats->nodes_pruned;
            if (data_swap) {
              ++stats->pruned_by_rule.lemma4;
            } else {
              ++stats->pruned_by_rule.lemma5;
            }
          }
          return true;
        }
      }
      return false;
    });
  }

  *out = std::move(generated);
}

double TopoTreeSearch::LowerBound(uint64_t mask, int depth) const {
  const int k = options_.num_channels;
  double bound = 0.0;
  if (options_.bound == BoundKind::kPaperNextSlot) {
    for (NodeId d : data_by_weight_) {
      if ((mask & Bit(d)) == 0) {
        bound += tree_.weight(d) * static_cast<double>(depth + 1);
      }
    }
    return bound;
  }
  // Packed bound: heaviest remaining data first, k per slot.
  int slot = depth + 1;
  int in_slot = 0;
  for (NodeId d : data_by_weight_) {
    if ((mask & Bit(d)) != 0) continue;
    bound += tree_.weight(d) * static_cast<double>(slot);
    if (++in_slot == k) {
      ++slot;
      in_slot = 0;
    }
  }
  return bound;
}

// ---------------------------------------------------------------------------
// Depth-first traversal (counting and branch-and-bound)
// ---------------------------------------------------------------------------

struct TopoTreeSearch::DfsContext {
  enum class Mode { kCountPaths, kCountNodes, kOptimize };
  Mode mode = Mode::kOptimize;
  uint64_t limit = 0;  // for the counting modes
  uint64_t count = 0;
  SearchStats stats;
  double best_v = std::numeric_limits<double>::infinity();
  std::vector<uint64_t> current_path;
  std::vector<uint64_t> best_path;
  std::vector<uint64_t> neighbor_scratch;  // reused across levels via copies
};

Status TopoTreeSearch::Dfs(DfsContext* ctx, uint64_t mask, uint64_t last_set,
                           int depth, double v) {
  ++ctx->stats.nodes_expanded;
  if (ctx->stats.nodes_expanded > options_.max_expansions) {
    return ResourceExhaustedError("topological-tree search exceeded " +
                                  std::to_string(options_.max_expansions) +
                                  " expansions");
  }
  if (ctx->mode == DfsContext::Mode::kCountNodes) {
    ++ctx->count;
    if (ctx->count > ctx->limit) {
      return ResourceExhaustedError("more than " + std::to_string(ctx->limit) +
                                    " topological-tree nodes");
    }
  }
  if (mask == full_mask_) {
    ++ctx->stats.paths_completed;
    if (ctx->mode == DfsContext::Mode::kCountPaths) {
      ++ctx->count;
      if (ctx->count > ctx->limit) {
        return ResourceExhaustedError("more than " + std::to_string(ctx->limit) +
                                      " topological-tree paths");
      }
    } else if (ctx->mode == DfsContext::Mode::kOptimize && v < ctx->best_v) {
      ctx->best_v = v;
      ctx->best_path = ctx->current_path;
      ++ctx->stats.incumbent_updates;
    }
    return Status::Ok();
  }

  std::vector<uint64_t> neighbors;
  GenerateNeighbors(mask, last_set, &neighbors, &ctx->stats);
  if (ctx->mode == DfsContext::Mode::kOptimize) {
    // Visit promising neighbors first so the incumbent tightens quickly. The
    // canonical order (not just weight-descending) pins which equal-cost
    // optimum is found first, so the parallel engine can reproduce it.
    std::sort(neighbors.begin(), neighbors.end(),
              [&](uint64_t a, uint64_t b) { return SubsetLess(a, b); });
  }
  for (uint64_t subset : neighbors) {
    double nv = v + SetDataWeight(subset) * static_cast<double>(depth + 1);
    if (ctx->mode == DfsContext::Mode::kOptimize) {
      // Lemmas 1/2: V + U is a lower bound on any completion through subset.
      if (nv + LowerBound(mask | subset, depth + 1) >= ctx->best_v) {
        ++ctx->stats.bound_cutoffs;
        continue;
      }
    }
    ctx->current_path.push_back(subset);
    Status status = Dfs(ctx, mask | subset, subset, depth + 1, nv);
    ctx->current_path.pop_back();
    BCAST_RETURN_IF_ERROR(status);
  }
  return Status::Ok();
}

SlotSequence CompoundPathToSlots(NodeId root,
                                 const std::vector<uint64_t>& path) {
  SlotSequence slots;
  slots.push_back({root});
  for (uint64_t set : path) {
    std::vector<NodeId> slot;
    ForEachBit(set, [&](NodeId id) { slot.push_back(id); });
    slots.push_back(std::move(slot));
  }
  return slots;
}

Result<uint64_t> TopoTreeSearch::CountPaths(uint64_t limit) {
  DfsContext ctx;
  ctx.mode = DfsContext::Mode::kCountPaths;
  ctx.limit = limit;
  NodeId root = tree_.root();
  double v0 = tree_.is_data(root) ? tree_.weight(root) : 0.0;
  BCAST_RETURN_IF_ERROR(Dfs(&ctx, Bit(root), Bit(root), 1, v0));
  return ctx.count;
}

Result<uint64_t> TopoTreeSearch::CountTreeNodes(uint64_t limit) {
  DfsContext ctx;
  ctx.mode = DfsContext::Mode::kCountNodes;
  ctx.limit = limit;
  NodeId root = tree_.root();
  double v0 = tree_.is_data(root) ? tree_.weight(root) : 0.0;
  BCAST_RETURN_IF_ERROR(Dfs(&ctx, Bit(root), Bit(root), 1, v0));
  return ctx.count;
}

Result<SearchStats> TopoTreeSearch::ReducedTreeStats(uint64_t limit) {
  // Full enumeration of the reduced tree (no bound, no incumbent), so the
  // per-rule counts depend only on the tree and the options — in particular
  // they are identical whatever thread count the optimizing engine used.
  DfsContext ctx;
  ctx.mode = DfsContext::Mode::kCountNodes;
  ctx.limit = limit;
  NodeId root = tree_.root();
  double v0 = tree_.is_data(root) ? tree_.weight(root) : 0.0;
  BCAST_RETURN_IF_ERROR(Dfs(&ctx, Bit(root), Bit(root), 1, v0));
  return ctx.stats;
}

Result<AllocationResult> TopoTreeSearch::FindOptimalDfs() {
  DfsContext ctx;
  ctx.mode = DfsContext::Mode::kOptimize;
  NodeId root = tree_.root();
  double v0 = tree_.is_data(root) ? tree_.weight(root) : 0.0;
  BCAST_RETURN_IF_ERROR(Dfs(&ctx, Bit(root), Bit(root), 1, v0));
  if (ctx.best_v == std::numeric_limits<double>::infinity()) {
    return InternalError("no feasible allocation found (pruning dead end)");
  }
  AllocationResult result;
  result.slots = CompoundPathToSlots(root, ctx.best_path);
  result.average_data_wait = ctx.best_v / tree_.total_data_weight();
  result.stats = ctx.stats;
  EmitSearchStats("search.topo_dfs", result.stats);
  // Debug builds statically verify every search product: feasibility of the
  // slot sequence and the accumulated V against an independent recount.
  BCAST_DCHECK_OK(AllocationVerifier(tree_)
                      .VerifySlots(options_.num_channels, result.slots,
                                   result.average_data_wait)
                      .ToStatus());
  return result;
}

// ---------------------------------------------------------------------------
// Best-first search (the paper's Section 3.1 strategy)
// ---------------------------------------------------------------------------

Result<AllocationResult> TopoTreeSearch::FindOptimalBestFirst() {
  struct ArenaNode {
    uint64_t mask;
    uint64_t last_set;
    double v;
    int depth;
    int parent;  // arena index, -1 for the root
  };
  struct QueueEntry {
    double e;  // E(X) = V(X) + U(X)
    double v;
    int arena_index;
    bool operator>(const QueueEntry& other) const {
      if (e != other.e) return e > other.e;
      return v > other.v;
    }
  };

  SearchStats stats;
  std::vector<ArenaNode> arena;
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>> open;

  NodeId root = tree_.root();
  double v0 = tree_.is_data(root) ? tree_.weight(root) : 0.0;
  arena.push_back({Bit(root), Bit(root), v0, 1, -1});
  open.push({v0 + LowerBound(Bit(root), 1), v0, 0});

  // Dominance: a state is skippable if an already-seen state with the same
  // key has both depth' <= depth and v' <= v. Without pruning the neighbor
  // set depends only on the allocated mask, so the key is the mask alone;
  // with pruning it also depends on the previous compound node.
  const bool pruning = options_.prune_candidates || options_.prune_local_swap;
  struct Seen {
    int depth;
    double v;
  };
  std::unordered_map<uint64_t, std::vector<Seen>> seen;
  auto state_key = [&](uint64_t mask, uint64_t last_set) -> uint64_t {
    if (!pruning) return mask;
    return mask ^ (last_set * uint64_t{0x9E3779B97F4A7C15});
  };
  auto dominated = [&](uint64_t key, int depth, double v) {
    auto it = seen.find(key);
    if (it == seen.end()) return false;
    for (const Seen& s : it->second) {
      if (s.depth <= depth && s.v <= v + 1e-12) return true;
    }
    return false;
  };

  std::vector<uint64_t> neighbors;
  while (!open.empty()) {
    QueueEntry top = open.top();
    open.pop();
    const ArenaNode node = arena[static_cast<size_t>(top.arena_index)];
    if (node.mask == full_mask_) {
      // First goal popped: optimal because E is a lower bound on total cost.
      std::vector<uint64_t> path;
      int cur = top.arena_index;
      while (arena[static_cast<size_t>(cur)].parent != -1) {
        path.push_back(arena[static_cast<size_t>(cur)].last_set);
        cur = arena[static_cast<size_t>(cur)].parent;
      }
      std::reverse(path.begin(), path.end());
      AllocationResult result;
      result.slots = CompoundPathToSlots(root, path);
      result.average_data_wait = node.v / tree_.total_data_weight();
      result.stats = stats;
      result.stats.paths_completed = 1;
      EmitSearchStats("search.topo_best_first", result.stats);
      BCAST_DCHECK_OK(AllocationVerifier(tree_)
                          .VerifySlots(options_.num_channels, result.slots,
                                       result.average_data_wait)
                          .ToStatus());
      return result;
    }
    uint64_t key = state_key(node.mask, node.last_set);
    if (dominated(key, node.depth, node.v)) {
      ++stats.dominance_skips;
      continue;
    }
    seen[key].push_back({node.depth, node.v});

    ++stats.nodes_expanded;
    if (stats.nodes_expanded > options_.max_expansions) {
      return ResourceExhaustedError("best-first search exceeded " +
                                    std::to_string(options_.max_expansions) +
                                    " expansions");
    }
    GenerateNeighbors(node.mask, node.last_set, &neighbors, &stats);
    for (uint64_t subset : neighbors) {
      uint64_t child_mask = node.mask | subset;
      int child_depth = node.depth + 1;
      double child_v =
          node.v + SetDataWeight(subset) * static_cast<double>(child_depth);
      uint64_t child_key = state_key(child_mask, subset);
      if (dominated(child_key, child_depth, child_v)) {
        ++stats.dominance_skips;
        continue;
      }
      arena.push_back({child_mask, subset, child_v, child_depth, top.arena_index});
      open.push({child_v + LowerBound(child_mask, child_depth), child_v,
                 static_cast<int>(arena.size()) - 1});
    }
  }
  return InternalError("best-first search exhausted the open list");
}

}  // namespace bcast
