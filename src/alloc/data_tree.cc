#include "alloc/data_tree.h"

#include <algorithm>
#include <bit>
#include <limits>
#include <string>

#include "util/check.h"

namespace bcast {

namespace {
uint64_t Bit(NodeId id) { return uint64_t{1} << id; }
}  // namespace

Result<DataTreeSearch> DataTreeSearch::Create(const IndexTree& tree,
                                              DataTreeOptions options) {
  if (!tree.finalized()) {
    return FailedPreconditionError("index tree must be finalized");
  }
  if (tree.num_nodes() > 64) {
    return InvalidArgumentError(
        "data-tree search supports at most 64 nodes, got " +
        std::to_string(tree.num_nodes()));
  }
  return DataTreeSearch(tree, options);
}

DataTreeSearch::DataTreeSearch(const IndexTree& tree, DataTreeOptions options)
    : tree_(tree), options_(options) {
  data_nodes_ = tree.DataNodes();
  ancestor_mask_.resize(static_cast<size_t>(tree.num_nodes()), 0);
  for (NodeId id = 0; id < tree.num_nodes(); ++id) {
    uint64_t mask = 0;
    NodeId cur = tree.parent(id);
    while (cur != kInvalidNode) {
      mask |= Bit(cur);
      cur = tree.parent(cur);
    }
    ancestor_mask_[static_cast<size_t>(id)] = mask;
    if (tree.is_index(id)) {
      all_index_mask_ |= Bit(id);
    } else {
      all_data_mask_ |= Bit(id);
    }
  }
  data_by_weight_ = data_nodes_;
  std::sort(data_by_weight_.begin(), data_by_weight_.end(),
            [&](NodeId a, NodeId b) {
              if (tree_.weight(a) != tree_.weight(b)) {
                return tree_.weight(a) > tree_.weight(b);
              }
              return a < b;
            });
  // Sibling groups (data nodes sharing a parent), each sorted heaviest first:
  // under Lemma 3 only the first unchosen member of each group is eligible.
  std::vector<NodeId> group_of(static_cast<size_t>(tree.num_nodes()),
                               kInvalidNode);
  for (NodeId d : data_nodes_) {
    NodeId parent = tree.parent(d);
    NodeId key = parent == kInvalidNode ? d : parent;
    if (group_of[static_cast<size_t>(key)] == kInvalidNode) {
      group_of[static_cast<size_t>(key)] = static_cast<NodeId>(groups_.size());
      groups_.emplace_back();
    }
    groups_[static_cast<size_t>(group_of[static_cast<size_t>(key)])].push_back(d);
  }
  for (auto& group : groups_) {
    std::sort(group.begin(), group.end(), [&](NodeId a, NodeId b) {
      if (tree_.weight(a) != tree_.weight(b)) {
        return tree_.weight(a) > tree_.weight(b);
      }
      return a < b;
    });
  }
}

void DataTreeSearch::EligibleData(uint64_t chosen_data,
                                  std::vector<NodeId>* out) const {
  out->clear();
  if (!options_.lemma3_group_order) {
    for (NodeId d : data_nodes_) {
      if ((chosen_data & Bit(d)) == 0) out->push_back(d);
    }
    return;
  }
  // Lemma 3: each sibling group contributes exactly its heaviest unchosen
  // member (groups are presorted heaviest-first).
  for (const auto& group : groups_) {
    for (NodeId d : group) {
      if ((chosen_data & Bit(d)) == 0) {
        out->push_back(d);
        break;
      }
    }
  }
}

struct DataTreeSearch::Context {
  enum class Mode { kCount, kOptimize };
  Mode mode = Mode::kOptimize;
  uint64_t limit = 0;
  uint64_t count = 0;
  SearchStats stats;

  // Mutable path state.
  std::vector<NodeId> order;
  std::vector<uint64_t> nanc_masks;  // Nancestor of each chosen data node
  uint64_t chosen_data = 0;
  uint64_t cancestor = 0;  // index nodes already emitted
  int position = 0;        // buckets emitted so far
  double v = 0.0;          // accumulated weighted wait

  double best_v = std::numeric_limits<double>::infinity();
  std::vector<NodeId> best_order;
  std::vector<std::vector<NodeId>> eligible_scratch;  // per recursion depth
};

double DataTreeSearch::CompletionCost(uint64_t chosen_data, int position) const {
  // Remaining data in descending weight, one bucket each, starting right
  // after the current position. This is simultaneously (a) the exact cost of
  // the Property-1 forced tail when all index nodes are out, and (b) an
  // admissible lower bound otherwise (pending index nodes only push data
  // later). data_by_weight_ is presorted, so this is a single skip-scan.
  double cost = 0.0;
  int pos = position;
  for (NodeId d : data_by_weight_) {
    if ((chosen_data & Bit(d)) != 0) continue;
    cost += tree_.weight(d) * static_cast<double>(++pos);
  }
  return cost;
}

double DataTreeSearch::RemainingLowerBound(uint64_t chosen_data,
                                           int position) const {
  return CompletionCost(chosen_data, position);
}

Status DataTreeSearch::Dfs(Context* ctx) {
  ++ctx->stats.nodes_expanded;
  if (ctx->stats.nodes_expanded > options_.max_steps) {
    return ResourceExhaustedError("data-tree search exceeded " +
                                  std::to_string(options_.max_steps) + " steps");
  }

  if (ctx->chosen_data == all_data_mask_) {
    ++ctx->stats.paths_completed;
    if (ctx->mode == Context::Mode::kCount) {
      ++ctx->count;
      if (ctx->count > ctx->limit) {
        return ResourceExhaustedError("more than " + std::to_string(ctx->limit) +
                                      " data-tree paths");
      }
    } else if (ctx->v < ctx->best_v) {
      ctx->best_v = ctx->v;
      ctx->best_order = ctx->order;
      ++ctx->stats.incumbent_updates;
    }
    return Status::Ok();
  }

  // Property 1: all index nodes are out — the optimal tail is forced
  // (remaining data in descending weight). Property 4 is still checked at
  // the boundary between the last enumerated data node and the head of the
  // forced tail: this is exactly the paper's Section 3.3 example, where the
  // path ... C | E D is pruned because exchanging 4C with E pays off
  // (1·15 < 2·18). Within the tail all Nancestors are empty, so descending
  // weights satisfy Property 4 automatically.
  if (options_.property1 && ctx->cancestor == all_index_mask_) {
    if (options_.property4 && !ctx->order.empty() &&
        ctx->chosen_data != all_data_mask_) {
      NodeId head = kInvalidNode;  // heaviest remaining data node
      for (NodeId d : data_by_weight_) {
        if ((ctx->chosen_data & Bit(d)) == 0) {
          head = d;
          break;
        }
      }
      NodeId prev = ctx->order.back();
      uint64_t prev_excl =
          ctx->nanc_masks.back() & ~ancestor_mask_[static_cast<size_t>(head)];
      int excl = std::popcount(prev_excl);
      // Nancestor(head) is empty here (all index nodes are out).
      if (tree_.weight(prev) <
          static_cast<double>(excl + 1) * tree_.weight(head)) {
        ++ctx->stats.nodes_pruned;
        ++ctx->stats.pruned_by_rule.lemma6;
        return Status::Ok();
      }
    }
    ++ctx->stats.pruned_by_rule.property1;
    ++ctx->stats.paths_completed;
    if (ctx->mode == Context::Mode::kCount) {
      ++ctx->count;
      if (ctx->count > ctx->limit) {
        return ResourceExhaustedError("more than " + std::to_string(ctx->limit) +
                                      " data-tree paths");
      }
    } else {
      double total = ctx->v + CompletionCost(ctx->chosen_data, ctx->position);
      if (total < ctx->best_v) {
        ctx->best_v = total;
        ++ctx->stats.incumbent_updates;
        ctx->best_order = ctx->order;
        for (NodeId d : data_by_weight_) {
          if ((ctx->chosen_data & Bit(d)) == 0) ctx->best_order.push_back(d);
        }
      }
    }
    return Status::Ok();
  }

  // Per-depth scratch buffer: avoids one heap allocation per expansion in
  // the hot counting loop (the m = 6 data tree has ~10^9 expansions). The
  // outer vector is pre-sized before the search starts, so taking a
  // reference is safe across the recursive calls below.
  size_t depth = ctx->order.size();
  BCAST_DCHECK(depth < ctx->eligible_scratch.size());
  std::vector<NodeId>& eligible = ctx->eligible_scratch[depth];
  EligibleData(ctx->chosen_data, &eligible);
  ctx->stats.nodes_generated += eligible.size();
  if (options_.lemma3_group_order) {
    // Lemma 3 suppresses every unchosen data node that is not its sibling
    // group's heaviest remaining member — eligible never contains them.
    const uint64_t unchosen = static_cast<uint64_t>(data_nodes_.size()) -
                              static_cast<uint64_t>(
                                  std::popcount(ctx->chosen_data & all_data_mask_));
    ctx->stats.pruned_by_rule.lemma3 += unchosen - eligible.size();
  }

  if (ctx->mode == Context::Mode::kOptimize && eligible.size() > 1) {
    // Visit high-density picks first (weight per bucket including the index
    // nodes the pick drags in): good incumbents early make the completion
    // bound bite much sooner. Order does not affect which paths exist.
    std::sort(eligible.begin(), eligible.end(), [&](NodeId a, NodeId b) {
      double da = tree_.weight(a) /
                  static_cast<double>(std::popcount(
                      ancestor_mask_[static_cast<size_t>(a)] & ~ctx->cancestor) +
                                      1);
      double db = tree_.weight(b) /
                  static_cast<double>(std::popcount(
                      ancestor_mask_[static_cast<size_t>(b)] & ~ctx->cancestor) +
                                      1);
      if (da != db) return da > db;
      return a < b;
    });
  }

  for (NodeId d : eligible) {
    uint64_t nanc = ancestor_mask_[static_cast<size_t>(d)] & ~ctx->cancestor;
    int nanc_size = std::popcount(nanc);

    // Property 4 (Lemma 6, 1-and-1 exchange): prune if swapping d with the
    // previous data node would strictly lower the cost.
    if (options_.property4 && !ctx->order.empty()) {
      NodeId prev = ctx->order.back();
      uint64_t prev_excl =
          ctx->nanc_masks.back() & ~ancestor_mask_[static_cast<size_t>(d)];
      int excl = std::popcount(prev_excl);
      if (static_cast<double>(nanc_size + 1) * tree_.weight(prev) <
          static_cast<double>(excl + 1) * tree_.weight(d)) {
        ++ctx->stats.nodes_pruned;
        ++ctx->stats.pruned_by_rule.lemma6;
        continue;
      }
    }

    // Corollary 2 extension: 2-and-1 block exchange. Only applied when the
    // block introduces no ancestor of d — then the block and d's subsequence
    // are cleanly exchangeable (swapping leaves every Nancestor unchanged),
    // so Lemma 6 applies verbatim with A = the two-node block.
    if (options_.extended_exchange && ctx->order.size() >= 2) {
      uint64_t block_anc = ctx->nanc_masks[ctx->nanc_masks.size() - 1] |
                           ctx->nanc_masks[ctx->nanc_masks.size() - 2];
      if ((block_anc & ancestor_mask_[static_cast<size_t>(d)]) == 0) {
        NodeId a1 = ctx->order[ctx->order.size() - 1];
        NodeId a2 = ctx->order[ctx->order.size() - 2];
        double n_a = static_cast<double>(std::popcount(block_anc) + 2);
        double w_a = tree_.weight(a1) + tree_.weight(a2);
        double n_b = static_cast<double>(nanc_size + 1);
        double w_b = tree_.weight(d);
        if (n_b * w_a < n_a * w_b) {
          ++ctx->stats.nodes_pruned;
          ++ctx->stats.pruned_by_rule.corollary2;
          continue;
        }
      }
    }

    int new_position = ctx->position + nanc_size + 1;
    double added = tree_.weight(d) * static_cast<double>(new_position);

    if (ctx->mode == Context::Mode::kOptimize &&
        ctx->v + added + RemainingLowerBound(ctx->chosen_data | Bit(d),
                                             new_position) >= ctx->best_v) {
      // Branch and bound on the admissible completion bound.
      ++ctx->stats.nodes_pruned;
      ++ctx->stats.bound_cutoffs;
      continue;
    }

    // Descend.
    ctx->order.push_back(d);
    ctx->nanc_masks.push_back(nanc);
    uint64_t saved_cancestor = ctx->cancestor;
    int saved_position = ctx->position;
    double saved_v = ctx->v;
    ctx->chosen_data |= Bit(d);
    ctx->cancestor |= nanc;
    ctx->position = new_position;
    ctx->v += added;

    Status status = Dfs(ctx);

    ctx->order.pop_back();
    ctx->nanc_masks.pop_back();
    ctx->chosen_data &= ~Bit(d);
    ctx->cancestor = saved_cancestor;
    ctx->position = saved_position;
    ctx->v = saved_v;
    BCAST_RETURN_IF_ERROR(status);
  }
  return Status::Ok();
}

Result<uint64_t> DataTreeSearch::CountPaths(uint64_t limit) {
  Context ctx;
  ctx.mode = Context::Mode::kCount;
  ctx.limit = limit;
  ctx.eligible_scratch.resize(data_nodes_.size() + 1);
  BCAST_RETURN_IF_ERROR(Dfs(&ctx));
  return ctx.count;
}

Result<AllocationResult> DataTreeSearch::FindOptimal() {
  Context ctx;
  ctx.mode = Context::Mode::kOptimize;
  ctx.eligible_scratch.resize(data_nodes_.size() + 1);
  BCAST_RETURN_IF_ERROR(Dfs(&ctx));
  if (ctx.best_v == std::numeric_limits<double>::infinity()) {
    return InternalError("data-tree search found no feasible order");
  }
  AllocationResult result;
  result.slots = BroadcastFromDataOrder(tree_, ctx.best_order);
  result.average_data_wait = ctx.best_v / tree_.total_data_weight();
  result.stats = ctx.stats;
  result.cost_lower_bound = result.average_data_wait;
  result.cost_upper_bound = result.average_data_wait;
  EmitSearchStats("search.data_tree", result.stats);
  return result;
}

SlotSequence BroadcastFromDataOrder(const IndexTree& tree,
                                    const std::vector<NodeId>& order) {
  BCAST_CHECK_EQ(order.size(), static_cast<size_t>(tree.num_data_nodes()));
  std::vector<bool> emitted(static_cast<size_t>(tree.num_nodes()), false);
  SlotSequence slots;
  slots.reserve(static_cast<size_t>(tree.num_nodes()));
  for (NodeId d : order) {
    BCAST_CHECK(tree.is_data(d)) << "order contains a non-data node";
    BCAST_CHECK(!emitted[static_cast<size_t>(d)]) << "duplicate data node";
    for (NodeId anc : tree.AncestorsOf(d)) {
      if (!emitted[static_cast<size_t>(anc)]) {
        emitted[static_cast<size_t>(anc)] = true;
        slots.push_back({anc});
      }
    }
    emitted[static_cast<size_t>(d)] = true;
    slots.push_back({d});
  }
  return slots;
}

}  // namespace bcast
