// The Personnel Assignment Problem (PAP) — the NP-hard problem the paper
// transforms index-and-data allocation into (Section 2.2, after [Str89]).
//
// Given a linearly ordered set of persons P1 < ... < Pn, a partially ordered
// set of jobs, and a cost C(i, j) for assigning job Ji to person Pj, find a
// one-to-one assignment minimizing total cost subject to: Ji <= Jj implies
// f(Ji) < f(Jj).
//
// This module provides a standalone exact solver (branch-and-bound over
// topological orders with a suffix-minimum lower bound) plus the paper's
// transformation: a single-channel broadcast instance maps to a PAP whose
// jobs are the tree nodes (ordered by the ancestor relation), persons are
// the slots, and C(i, j) = W(i)·j for data nodes / 0 for index nodes. The
// test suite uses the transformation as an independent oracle: the PAP
// optimum must equal the data-tree search optimum.
//
// Because the precedence input is an arbitrary DAG, the solver also covers
// the paper's third future-work item (broadcast data with general dependency
// graphs, cf. [CHK99]) on a single channel.

#ifndef BCAST_ALLOC_PERSONNEL_H_
#define BCAST_ALLOC_PERSONNEL_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "alloc/allocation.h"
#include "tree/index_tree.h"
#include "util/status.h"

namespace bcast {

/// A PAP instance. Jobs and persons are 0-based; `cost[i][j]` is the cost of
/// assigning job i to person j (the matrix must be square, num_jobs²).
struct PersonnelAssignmentProblem {
  int num_jobs = 0;
  /// (a, b) means job a must be assigned to an earlier person than job b.
  std::vector<std::pair<int, int>> precedence;
  std::vector<std::vector<double>> cost;
};

struct PapSolution {
  std::vector<int> person_of_job;  // person index per job
  double total_cost = 0.0;
  SearchStats stats;
};

struct PapOptions {
  uint64_t max_expansions = 50'000'000;
};

/// Exact solution by branch-and-bound over the topological orders of the job
/// poset. Errors on malformed instances (non-square costs, out-of-range or
/// cyclic precedence), more than 64 jobs, or an exhausted search budget.
Result<PapSolution> SolvePersonnelAssignment(
    const PersonnelAssignmentProblem& problem, const PapOptions& options = {});

/// The paper's Section 2.2 transformation for one broadcast channel: jobs =
/// tree nodes, persons = slots 1..N, C(data i, slot j) = W(i)·j, C(index, ·)
/// = 0, precedence = the parent-child edges.
PersonnelAssignmentProblem PapFromIndexTree(const IndexTree& tree);

/// A weighted-DAG broadcast instance on one channel (future-work #3): node i
/// has weight w_i (0 for pure "index" nodes) and must air after all its
/// predecessors; C(i, j) = w_i·(j+1).
PersonnelAssignmentProblem PapFromWeightedDag(
    const std::vector<double>& weights,
    const std::vector<std::pair<int, int>>& edges);

}  // namespace bcast

#endif  // BCAST_ALLOC_PERSONNEL_H_
