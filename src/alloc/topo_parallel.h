// Parallel exact search over the k-channel topological tree.
//
// TopoBnbProblem adapts TopoTreeSearch's expansion building blocks (neighbor
// generation with the Appendix pruning, the admissible bound, the canonical
// sibling order) to the exec/parallel_search.h BnbProblem interface, and
// FindOptimalTopoParallel runs the work-stealing engine over it.
//
// The result is byte-identical to TopoTreeSearch::FindOptimalDfs() for any
// thread count — both engines report the (cost, canonical-lex) minimal
// root-to-leaf path, materialized through the shared CompoundPathToSlots.
// Only the search statistics vary between runs.

#ifndef BCAST_ALLOC_TOPO_PARALLEL_H_
#define BCAST_ALLOC_TOPO_PARALLEL_H_

#include <atomic>
#include <cstdint>
#include <limits>
#include <vector>

#include "alloc/allocation.h"
#include "alloc/topo_search.h"
#include "exec/parallel_search.h"
#include "util/status.h"

namespace bcast {

/// BnbProblem view of a TopoTreeSearch instance. Pure const reads of the
/// search object; the generation/pruning counters are relaxed atomics so
/// concurrent Expand calls can account their work.
class TopoBnbProblem : public BnbProblem {
 public:
  /// `search` must outlive the problem.
  explicit TopoBnbProblem(const TopoTreeSearch& search) : search_(search) {}

  BnbState Root() const override;
  bool IsGoal(const BnbState& state) const override;
  void Expand(const BnbState& state,
              std::vector<uint64_t>* subsets) const override;
  BnbState Child(const BnbState& state, uint64_t subset) const override;
  double Estimate(const BnbState& state) const override;
  bool SubsetLess(uint64_t a, uint64_t b) const override;
  /// Unplaced-node count — the engine's sequential-cutoff signal
  /// (ParallelSearchOptions::min_parallel_subtree).
  uint64_t SubtreeSizeHint(const BnbState& state) const override;

  uint64_t nodes_generated() const {
    return nodes_generated_.load(std::memory_order_relaxed);
  }
  uint64_t nodes_pruned() const {
    return nodes_pruned_.load(std::memory_order_relaxed);
  }

  /// Per-rule totals accumulated across every Expand call. Relaxed reads —
  /// call after the engine joined for exact values.
  PruneCounts pruned_by_rule() const;

 private:
  const TopoTreeSearch& search_;
  mutable std::atomic<uint64_t> nodes_generated_{0};
  mutable std::atomic<uint64_t> nodes_pruned_{0};
  mutable std::atomic<uint64_t> pruned_property2_{0};
  mutable std::atomic<uint64_t> pruned_property3_{0};
  mutable std::atomic<uint64_t> pruned_lemma3_{0};
  mutable std::atomic<uint64_t> pruned_lemma4_{0};
  mutable std::atomic<uint64_t> pruned_lemma5_{0};
};

/// Runs the parallel branch-and-bound over the (possibly reduced)
/// topological tree of `search`. num_threads/cache semantics are those of
/// ParallelSearchOptions; max_expansions is taken from the search's own
/// options. Returns the same allocation as search.FindOptimalDfs().
///
/// `seed_cost_v` seeds the engine's incumbent bound with the total weighted
/// wait of a known feasible allocation (+inf = unseeded). Same contract as
/// TopoTreeSearch::FindOptimalDfs: a correct upper bound leaves the returned
/// slots/ADW byte-identical and only shrinks the explored tree.
///
/// `budget` (optional) enables anytime stops (deadline / cancel / soft
/// expansion budget); a truncated run returns the engine's incumbent tagged
/// PlanProvenance::kAnytime with a valid cost-bound bracket. NOTE: *which*
/// incumbent is live when a stop fires depends on steal timing, so budgeted
/// parallel runs are not byte-stable across thread counts — the
/// deterministic expansion-budget contract belongs to the sequential DFS
/// (FindOptimalAllocation routes it there). Use this path for wall-clock
/// deadlines and cancellation, where real time already broke determinism.
///
/// `tuning` (optional) seeds the engine's performance knobs — batch_factor,
/// spawn_depth, min_parallel_subtree, store_capacity/arena/CAS-retry — from
/// the given options before the per-call fields above (num_threads,
/// max_expansions, incumbent seed, budget) are applied on top. Tuning knobs
/// never change the returned slots/ADW, only the schedule and the counters;
/// bench_parallel_search uses this to sweep batch granularity.
Result<AllocationResult> FindOptimalTopoParallel(
    const TopoTreeSearch& search, int num_threads,
    double seed_cost_v = std::numeric_limits<double>::infinity(),
    const SearchBudget* budget = nullptr,
    const ParallelSearchOptions* tuning = nullptr);

}  // namespace bcast

#endif  // BCAST_ALLOC_TOPO_PARALLEL_H_
