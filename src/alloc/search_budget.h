// Resource budget for the exact allocation searches, enabling *anytime*
// behaviour: when the budget runs out mid-search, the engines stop and return
// the best incumbent found so far (tagged PlanProvenance::kAnytime, with a
// cost-bound gap) instead of running to completion or failing outright.
//
// Three independent stop conditions compose; any subset may be active:
//
//   * max_expansions — deterministic soft budget counted in node expansions.
//     Expansion counts are part of the determinism contract (the same
//     instance expands the same nodes in the same canonical order), so a
//     fixed expansion budget yields byte-identical anytime results across
//     runs AND across thread counts: FindOptimalAllocation routes
//     expansion-budgeted searches through the canonical sequential DFS.
//     This is the form tests and benches use.
//   * deadline_ns — wall-clock budget, relative to search start, read
//     through the injectable obs::Clock (nullptr = the real monotonic
//     clock). Inherently non-deterministic; production servers use this.
//   * cancel — cooperative CancelToken checked once per expansion, so a
//     search stops within a bounded number of expansions of Cancel().
//
// Distinct from the pre-existing OptimalOptions::max_expansions *hard* valve,
// which still aborts with ResourceExhausted and no result: the hard valve is
// a runaway-search fuse, the SearchBudget is a quality/time dial.

#ifndef BCAST_ALLOC_SEARCH_BUDGET_H_
#define BCAST_ALLOC_SEARCH_BUDGET_H_

#include <cstdint>

#include "exec/cancel.h"
#include "obs/clock.h"

namespace bcast {

struct SearchBudget {
  /// Stop after this many node expansions (0 = unlimited). Deterministic and
  /// thread-count-invariant (budgeted searches run the canonical DFS).
  uint64_t max_expansions = 0;

  /// Stop once this much wall time has elapsed since search start
  /// (0 = no deadline). Read through `clock`; non-deterministic.
  uint64_t deadline_ns = 0;

  /// Time source for deadline_ns. nullptr = obs::MonotonicClock().
  obs::Clock* clock = nullptr;

  /// Optional cooperative cancellation, polled every expansion. Not owned;
  /// must outlive the search. nullptr = not cancellable.
  const CancelToken* cancel = nullptr;

  /// True iff any stop condition is configured. Inactive budgets add zero
  /// overhead and zero behaviour change to the search.
  bool active() const {
    return max_expansions > 0 || deadline_ns > 0 || cancel != nullptr;
  }
};

}  // namespace bcast

#endif  // BCAST_ALLOC_SEARCH_BUDGET_H_
