// The paper's two heuristics for large broadcast programs (Section 4.2).
//
// 1) Index tree sorting: the children of every index node are sorted by the
//    subtree rule  A before B  iff  N_B·W(A) >= N_A·W(B)  (N = subtree node
//    count, W = subtree data weight); a preorder traversal of the sorted tree
//    is the single-channel broadcast, and the 1_To_k_BroadcastChannel
//    procedure spreads it over k channels level by level.
//
// 2) Index tree shrinking: index nodes whose children are all data nodes are
//    combined into pseudo data nodes (weight = sum of the children) until the
//    tree is small enough for the exact search; the optimal broadcast of the
//    shrunken tree is then expanded by restoring each combined node (index
//    node first, its data children in descending weight order). When
//    combination alone cannot reach the size budget, the tree is partitioned
//    at the root and the subtrees are solved independently and merged in
//    sorted order (the paper's tree-partitioning variant).
//
// Deviation from the paper, documented in DESIGN.md: the verbatim 1_To_k
// procedure can place a leftover parent and its child in the same slot when a
// level overflows the channels; we defer such children to the next slot so
// every produced schedule is feasible (ValidateSlotSequence-clean).

#ifndef BCAST_ALLOC_HEURISTICS_H_
#define BCAST_ALLOC_HEURISTICS_H_

#include <vector>

#include "alloc/allocation.h"
#include "tree/index_tree.h"
#include "util/status.h"

namespace bcast {

/// Returns a copy of `tree` with every index node's children reordered by
/// the paper's subtree-sorting rule (Section 4.2, "Index Tree Sorting").
IndexTree SortIndexTree(const IndexTree& tree);

/// Index-tree-sorting heuristic for any number of channels. O(N log N) sort
/// plus a linear allocation pass.
Result<AllocationResult> SortingHeuristic(const IndexTree& tree,
                                          int num_channels);

struct ShrinkOptions {
  /// How to reduce trees that exceed the exact-search budget (the paper's two
  /// shrinking variants).
  enum class Strategy {
    /// Collapse index nodes whose children are all data into pseudo data
    /// nodes (lightest first) until the tree fits the exact search.
    kNodeCombination,
    /// Split at the root, solve each subtree recursively, merge the subtree
    /// broadcasts in the sorted-subtree order.
    kTreePartitioning,
  };

  /// Trees at or below this node count are solved exactly (must be <= 64).
  int exact_size_limit = 22;
  Strategy strategy = Strategy::kNodeCombination;
};

/// Index-tree-shrinking heuristic: node combination, exact search on the
/// shrunken tree, expansion, and root partitioning as a fallback.
Result<AllocationResult> ShrinkingHeuristic(const IndexTree& tree,
                                            int num_channels,
                                            const ShrinkOptions& options = {});

/// Packs a feasible linear node order into <= num_channels-wide slots,
/// deferring any node whose parent has not yet been placed in a strictly
/// earlier slot. Used by both heuristics and by the baselines.
SlotSequence PackLinearOrder(const IndexTree& tree, int num_channels,
                             const std::vector<NodeId>& order);

}  // namespace bcast

#endif  // BCAST_ALLOC_HEURISTICS_H_
