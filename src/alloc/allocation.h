// Shared types for allocation algorithms.
//
// Every algorithm in src/alloc/ produces a *slot sequence*: for each slot of
// the broadcast cycle, the set of nodes transmitted at that slot (one per
// channel; the compound nodes of the paper's topological tree). The slot
// sequence is channel-agnostic — the average data wait only depends on slots
// (Section 2.2) — and is turned into a concrete channel assignment by
// BuildScheduleFromSlots, which applies the paper's channel rules.

#ifndef BCAST_ALLOC_ALLOCATION_H_
#define BCAST_ALLOC_ALLOCATION_H_

#include <cstdint>
#include <vector>

#include "broadcast/schedule.h"
#include "tree/index_tree.h"
#include "util/status.h"

namespace bcast {

/// slots[s] = nodes broadcast at slot s (size <= num_channels each).
using SlotSequence = std::vector<std::vector<NodeId>>;

/// Instrumentation counters reported by the searches.
struct SearchStats {
  uint64_t nodes_expanded = 0;   // topological-tree nodes visited
  uint64_t nodes_generated = 0;  // next-neighbors created
  uint64_t nodes_pruned = 0;     // next-neighbors eliminated by the rules
  uint64_t paths_completed = 0;  // full allocations reached
};

/// The outcome of an allocation algorithm.
struct AllocationResult {
  SlotSequence slots;
  double average_data_wait = 0.0;
  SearchStats stats;
};

/// Average data wait of a slot sequence (formula 1): Σ W(d)·(slot(d)+1) / ΣW.
/// Check-fails if a data node is missing from the sequence.
double SlotSequenceDataWait(const IndexTree& tree, const SlotSequence& slots);

/// Validates that `slots` is a feasible allocation for `num_channels`
/// channels: every node exactly once, per-slot size <= num_channels, child
/// strictly after parent.
Status ValidateSlotSequence(const IndexTree& tree, int num_channels,
                            const SlotSequence& slots);

}  // namespace bcast

#endif  // BCAST_ALLOC_ALLOCATION_H_
