// Shared types for allocation algorithms.
//
// Every algorithm in src/alloc/ produces a *slot sequence*: for each slot of
// the broadcast cycle, the set of nodes transmitted at that slot (one per
// channel; the compound nodes of the paper's topological tree). The slot
// sequence is channel-agnostic — the average data wait only depends on slots
// (Section 2.2) — and is turned into a concrete channel assignment by
// BuildScheduleFromSlots, which applies the paper's channel rules.

#ifndef BCAST_ALLOC_ALLOCATION_H_
#define BCAST_ALLOC_ALLOCATION_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "broadcast/schedule.h"
#include "tree/index_tree.h"
#include "util/status.h"

namespace bcast {

/// slots[s] = nodes broadcast at slot s (size <= num_channels each).
using SlotSequence = std::vector<std::vector<NodeId>>;

/// Eliminations attributed to the paper's individual pruning rules. Lemmas 1
/// and 2 justify the bound itself, so their effect shows up as
/// SearchStats::bound_cutoffs rather than here; Corollary 1 short-circuits
/// the search entirely (level allocation) and is counted by the planner.
struct PruneCounts {
  uint64_t property1 = 0;   // forced tail once remaining data fits one slot
  uint64_t property2 = 0;   // k=1 heaviest-subtree candidate pruning (Step 2)
  uint64_t property3 = 0;   // k>1 candidate characterizations (Step 2)
  uint64_t lemma3 = 0;      // subset rules: heaviest prefix / child-of-P (Step 3)
  uint64_t lemma4 = 0;      // local data swap dominance (Step 4(i))
  uint64_t lemma5 = 0;      // index preorder-rank order (Step 4(ii))
  uint64_t lemma6 = 0;      // Property 4 exchange argument
  uint64_t corollary2 = 0;  // extended exchange beyond adjacent slots

  uint64_t Total() const {
    return property1 + property2 + property3 + lemma3 + lemma4 + lemma5 +
           lemma6 + corollary2;
  }

  PruneCounts& operator+=(const PruneCounts& other) {
    property1 += other.property1;
    property2 += other.property2;
    property3 += other.property3;
    lemma3 += other.lemma3;
    lemma4 += other.lemma4;
    lemma5 += other.lemma5;
    lemma6 += other.lemma6;
    corollary2 += other.corollary2;
    return *this;
  }
};

/// Instrumentation counters reported by the searches.
struct SearchStats {
  uint64_t nodes_expanded = 0;     // topological-tree nodes visited
  uint64_t nodes_generated = 0;    // next-neighbors created
  uint64_t nodes_pruned = 0;       // next-neighbors eliminated by the rules
  uint64_t paths_completed = 0;    // full allocations reached
  uint64_t bound_cutoffs = 0;      // subtrees cut by the Lemma 1/2 lower bound
  uint64_t incumbent_updates = 0;  // times a new best allocation was adopted
  uint64_t dominance_skips = 0;    // best-first closed-set dominance skips
  // Concurrent state-store accounting (parallel engine only; all zero for the
  // sequential DFS). Mirrors exec/state_store.h StateStoreCounters: hits are
  // visits skipped as dominated, inserts are states recorded, dominated are
  // weaker entries replaced in place, evictions are states the store dropped
  // without recording (capacity/arena/CAS-retry pressure — re-expanded, never
  // wrong), cas_retries counts publication races that looped.
  uint64_t store_hits = 0;
  uint64_t store_inserts = 0;
  uint64_t store_dominated = 0;
  uint64_t store_evictions = 0;
  uint64_t store_cas_retries = 0;
  PruneCounts pruned_by_rule;      // attribution of nodes_pruned (see above)

  SearchStats& operator+=(const SearchStats& other) {
    nodes_expanded += other.nodes_expanded;
    nodes_generated += other.nodes_generated;
    nodes_pruned += other.nodes_pruned;
    paths_completed += other.paths_completed;
    bound_cutoffs += other.bound_cutoffs;
    incumbent_updates += other.incumbent_updates;
    dominance_skips += other.dominance_skips;
    store_hits += other.store_hits;
    store_inserts += other.store_inserts;
    store_dominated += other.store_dominated;
    store_evictions += other.store_evictions;
    store_cas_retries += other.store_cas_retries;
    pruned_by_rule += other.pruned_by_rule;
    return *this;
  }
};

/// Folds `stats` into the global metrics registry under `prefix` (e.g.
/// "search.topo_dfs"). No-op when no registry is installed.
void EmitSearchStats(const char* prefix, const SearchStats& stats);

/// Emits the deterministic per-rule breakdown under the thread-invariant
/// "pruning." namespace. No-op when no registry is installed.
void EmitPruningBreakdown(const SearchStats& stats);

/// How an allocation was obtained — the quality class a consumer can rely
/// on. The degradation ladder (core/planner.h) walks these top to bottom.
enum class PlanProvenance {
  kExact,          // proven optimal (search ran to completion)
  kAnytime,        // best incumbent of a budget/deadline/cancel-stopped search
  kHeuristic,      // a heuristic or baseline, no optimality claim
  kStalePrevious,  // a previous cycle's plan re-served after planner failure
};

/// Canonical name ("exact", "anytime", "heuristic", "stale-previous").
const char* PlanProvenanceName(PlanProvenance provenance);

/// The outcome of an allocation algorithm.
struct AllocationResult {
  SlotSequence slots;
  double average_data_wait = 0.0;
  SearchStats stats;
  PlanProvenance provenance = PlanProvenance::kExact;
  /// Bracket on the *optimal* average data wait for this (tree, channels)
  /// instance: cost_lower_bound <= optimum <= cost_upper_bound. Exact results
  /// have both equal to average_data_wait; anytime results report the folded
  /// frontier bound; heuristics report an instance lower bound where one is
  /// cheap (else NaN = unknown). cost_upper_bound always equals
  /// average_data_wait of the returned (feasible) slots.
  double cost_lower_bound = std::numeric_limits<double>::quiet_NaN();
  double cost_upper_bound = std::numeric_limits<double>::quiet_NaN();
};

/// Average data wait of a slot sequence (formula 1): Σ W(d)·(slot(d)+1) / ΣW.
/// Check-fails if a data node is missing from the sequence.
double SlotSequenceDataWait(const IndexTree& tree, const SlotSequence& slots);

/// Validates that `slots` is a feasible allocation for `num_channels`
/// channels: every node exactly once, per-slot size <= num_channels, child
/// strictly after parent.
Status ValidateSlotSequence(const IndexTree& tree, int num_channels,
                            const SlotSequence& slots);

}  // namespace bcast

#endif  // BCAST_ALLOC_ALLOCATION_H_
