// One-call exact optimizer: dispatches to the cheapest exact method for the
// given instance.
//
//  * num_channels >= max level width  ->  level allocation (Corollary 1:
//    every data node d attains its floor T(d) = level(d), so this is optimal
//    in O(N));
//  * one channel                      ->  data-tree search (Section 3.3);
//  * otherwise                        ->  pruned topological-tree
//    branch-and-bound (Sections 3.1–3.2).

#ifndef BCAST_ALLOC_OPTIMAL_H_
#define BCAST_ALLOC_OPTIMAL_H_

#include <limits>

#include "alloc/allocation.h"
#include "alloc/search_budget.h"
#include "alloc/topo_search.h"
#include "tree/index_tree.h"
#include "util/status.h"

namespace bcast {

struct OptimalOptions {
  /// Disable to run the raw unpruned search (testing/ablation only).
  bool use_pruning = true;
  /// Forwarded to the underlying searches.
  uint64_t max_expansions = 200'000'000;
  /// Worker threads for the topological-tree branch-and-bound. 1 runs the
  /// single-threaded engine exactly as before; 0 resolves to the hardware
  /// concurrency. The returned allocation is byte-identical for every value
  /// (see src/exec/parallel_search.h for the determinism argument) — only
  /// wall-clock and the search statistics change. The level-allocation and
  /// one-channel data-tree fast paths ignore this knob.
  int num_threads = 1;
  /// Lower-bound estimate used by the topological-tree searches.
  TopoTreeSearch::BoundKind bound = TopoTreeSearch::BoundKind::kPacked;

  /// How the topological-tree branch-and-bound incumbent is seeded before
  /// the first expansion. Seeding is a pure upper bound — the searches cut
  /// children only when they estimate *strictly above* the seed — so the
  /// returned slots/ADW are byte-identical across all three modes and every
  /// thread count; only nodes_expanded / bound_cutoffs change (the
  /// search.seed.* counters record the applied seed).
  enum class SeedIncumbent {
    /// Start from an infinite incumbent (the pre-seeding behavior).
    kNone,
    /// Seed with the index-tree-sorting heuristic's cost (O(N log N),
    /// negligible next to the exact search). Default.
    kHeuristic,
    /// min(heuristic, warm_start_adw): additionally re-use the cost of a
    /// known feasible allocation from a previous planning cycle, supplied
    /// via warm_start_adw (the adaptive server re-costs the previous
    /// cycle's slots under the new weights).
    kPrevious,
  };
  SeedIncumbent seed_incumbent = SeedIncumbent::kHeuristic;
  /// Average data wait of a previously planned allocation re-costed against
  /// the *current* tree, used when seed_incumbent == kPrevious. NaN = no
  /// previous allocation available (falls back to the heuristic seed).
  double warm_start_adw = std::numeric_limits<double>::quiet_NaN();

  /// Anytime budget (inactive by default — identical behavior to before).
  /// With an active budget the search degrades instead of failing: a stop
  /// mid-search returns the incumbent tagged kAnytime with cost bounds, and
  /// a stop before any complete path falls back to SortingHeuristic tagged
  /// kHeuristic. Determinism routing: budget.max_expansions > 0 forces the
  /// canonical sequential DFS regardless of num_threads (byte-identical
  /// anytime results across thread counts); deadline/cancel-only budgets
  /// keep the parallel engine (wall-clock already broke determinism).
  SearchBudget budget;
};

/// Exact minimum-average-data-wait allocation. Errors on trees over 64 nodes
/// (use the heuristics) or if the search budget is exhausted (only without an
/// active anytime budget — see OptimalOptions::budget).
Result<AllocationResult> FindOptimalAllocation(const IndexTree& tree,
                                               int num_channels,
                                               const OptimalOptions& options = {});

}  // namespace bcast

#endif  // BCAST_ALLOC_OPTIMAL_H_
