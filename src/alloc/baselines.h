// Baseline allocation strategies used for comparison in the benchmarks:
//
//  * LevelAllocation   — one level per slot (optimal when channels >= widest
//                        level, Corollary 1; also the single-cycle analogue of
//                        [SV96]'s level-per-channel index allocation whose
//                        inflexibility/space-waste the paper criticizes);
//  * PreorderBaseline  — plain unsorted preorder, the naive broadcast; the gap
//                        to SortingHeuristic isolates the value of the
//                        subtree-sorting rule;
//  * GreedyWeightBaseline — data nodes in global descending-weight order with
//                        lazily inserted ancestors; index-oblivious greedy;
//  * RandomFeasibleAllocation — a uniformly random topological order, the
//                        "no scheduling at all" floor for property tests.

#ifndef BCAST_ALLOC_BASELINES_H_
#define BCAST_ALLOC_BASELINES_H_

#include "alloc/allocation.h"
#include "tree/index_tree.h"
#include "util/rng.h"
#include "util/status.h"

namespace bcast {

/// Slot s carries exactly the nodes of tree level s+1. Errors unless
/// num_channels >= tree.max_level_width(). By Corollary 1 this allocation is
/// optimal in that regime.
Result<AllocationResult> LevelAllocation(const IndexTree& tree,
                                         int num_channels);

/// Unsorted preorder traversal packed into k-wide slots.
Result<AllocationResult> PreorderBaseline(const IndexTree& tree,
                                          int num_channels);

/// Data in descending weight order, ancestors inserted lazily, packed k-wide.
Result<AllocationResult> GreedyWeightBaseline(const IndexTree& tree,
                                              int num_channels);

/// A uniformly random feasible allocation.
Result<AllocationResult> RandomFeasibleAllocation(const IndexTree& tree,
                                                  int num_channels, Rng* rng);

}  // namespace bcast

#endif  // BCAST_ALLOC_BASELINES_H_
