#include "alloc/topo_parallel.h"

#include <algorithm>
#include <bit>

#include "util/check.h"
#include "verify/verifier.h"

namespace bcast {

BnbState TopoBnbProblem::Root() const {
  const IndexTree& tree = search_.tree();
  NodeId root = tree.root();
  uint64_t root_bit = uint64_t{1} << root;
  BnbState state;
  state.mask = root_bit;
  state.last_set = root_bit;
  state.depth = 1;
  state.v = tree.is_data(root) ? tree.weight(root) : 0.0;
  return state;
}

bool TopoBnbProblem::IsGoal(const BnbState& state) const {
  return state.mask == search_.full_mask();
}

void TopoBnbProblem::Expand(const BnbState& state,
                            std::vector<uint64_t>* subsets) const {
  SearchStats local;
  search_.GenerateNeighbors(state.mask, state.last_set, subsets, &local);
  std::sort(subsets->begin(), subsets->end(),
            [&](uint64_t a, uint64_t b) { return search_.SubsetLess(a, b); });
  nodes_generated_.fetch_add(local.nodes_generated, std::memory_order_relaxed);
  nodes_pruned_.fetch_add(local.nodes_pruned, std::memory_order_relaxed);
  const PruneCounts& rules = local.pruned_by_rule;
  if (rules.property2 != 0) {
    pruned_property2_.fetch_add(rules.property2, std::memory_order_relaxed);
  }
  if (rules.property3 != 0) {
    pruned_property3_.fetch_add(rules.property3, std::memory_order_relaxed);
  }
  if (rules.lemma3 != 0) {
    pruned_lemma3_.fetch_add(rules.lemma3, std::memory_order_relaxed);
  }
  if (rules.lemma4 != 0) {
    pruned_lemma4_.fetch_add(rules.lemma4, std::memory_order_relaxed);
  }
  if (rules.lemma5 != 0) {
    pruned_lemma5_.fetch_add(rules.lemma5, std::memory_order_relaxed);
  }
}

PruneCounts TopoBnbProblem::pruned_by_rule() const {
  PruneCounts rules;
  rules.property2 = pruned_property2_.load(std::memory_order_relaxed);
  rules.property3 = pruned_property3_.load(std::memory_order_relaxed);
  rules.lemma3 = pruned_lemma3_.load(std::memory_order_relaxed);
  rules.lemma4 = pruned_lemma4_.load(std::memory_order_relaxed);
  rules.lemma5 = pruned_lemma5_.load(std::memory_order_relaxed);
  return rules;
}

BnbState TopoBnbProblem::Child(const BnbState& state, uint64_t subset) const {
  BnbState child;
  child.mask = state.mask | subset;
  child.last_set = subset;
  child.depth = state.depth + 1;
  child.v = state.v + search_.SetDataWeight(subset) *
                          static_cast<double>(state.depth + 1);
  return child;
}

double TopoBnbProblem::Estimate(const BnbState& state) const {
  return state.v + search_.LowerBound(state.mask, state.depth);
}

bool TopoBnbProblem::SubsetLess(uint64_t a, uint64_t b) const {
  return search_.SubsetLess(a, b);
}

uint64_t TopoBnbProblem::SubtreeSizeHint(const BnbState& state) const {
  return static_cast<uint64_t>(std::popcount(search_.full_mask()) -
                               std::popcount(state.mask));
}

Result<AllocationResult> FindOptimalTopoParallel(const TopoTreeSearch& search,
                                                 int num_threads,
                                                 double seed_cost_v,
                                                 const SearchBudget* budget,
                                                 const ParallelSearchOptions* tuning) {
  TopoBnbProblem problem(search);
  ParallelSearchOptions options =
      tuning != nullptr ? *tuning : ParallelSearchOptions{};
  options.num_threads = num_threads;
  options.max_expansions = search.options().max_expansions;
  options.initial_bound = seed_cost_v;
  if (budget != nullptr && budget->active()) {
    options.soft_budget_expansions = budget->max_expansions;
    options.deadline_ns = budget->deadline_ns;
    options.clock = budget->clock;
    options.cancel = budget->cancel;
  } else {
    // The per-call budget owns these fields; never inherit them from tuning.
    ParallelSearchOptions defaults;
    options.soft_budget_expansions = defaults.soft_budget_expansions;
    options.deadline_ns = defaults.deadline_ns;
    options.clock = defaults.clock;
    options.cancel = defaults.cancel;
  }
  auto parallel = RunParallelSearch(problem, options);
  if (!parallel.ok()) return parallel.status();

  const IndexTree& tree = search.tree();
  AllocationResult result;
  result.slots = CompoundPathToSlots(tree.root(), parallel->best_path);
  result.average_data_wait = parallel->best_v / tree.total_data_weight();
  if (parallel->truncated) {
    result.provenance = PlanProvenance::kAnytime;
    result.cost_upper_bound = result.average_data_wait;
    result.cost_lower_bound =
        parallel->frontier_lower / tree.total_data_weight();
  } else {
    result.provenance = PlanProvenance::kExact;
    result.cost_lower_bound = result.average_data_wait;
    result.cost_upper_bound = result.average_data_wait;
  }
  result.stats.nodes_expanded = parallel->stats.nodes_expanded;
  result.stats.nodes_generated = problem.nodes_generated();
  result.stats.nodes_pruned = problem.nodes_pruned();
  result.stats.paths_completed = parallel->stats.paths_completed;
  result.stats.bound_cutoffs = parallel->stats.bound_pruned;
  result.stats.incumbent_updates = parallel->stats.incumbent_updates;
  result.stats.store_hits = parallel->stats.cache_hits;
  result.stats.store_inserts = parallel->stats.cache_misses;
  result.stats.store_dominated = parallel->stats.cache_evictions;
  result.stats.store_evictions = parallel->stats.cache_dropped;
  result.stats.store_cas_retries = parallel->stats.cache_cas_retries;
  result.stats.pruned_by_rule = problem.pruned_by_rule();
  EmitSearchStats("search.topo_parallel", result.stats);
  BCAST_DCHECK_OK(AllocationVerifier(tree)
                      .VerifySlots(search.options().num_channels, result.slots,
                                   result.average_data_wait)
                      .ToStatus());
  return result;
}

}  // namespace bcast
