#include "alloc/replication.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

#include "broadcast/schedule_builder.h"
#include "util/check.h"
#include "workload/query_sampler.h"

namespace bcast {

namespace {

// The replica block: the index nodes of the top `levels` tree levels, packed
// level-major into columns of at most `num_channels` nodes. Level boundaries
// never share a column, so within a block every child airs strictly after
// its parent.
std::vector<std::vector<NodeId>> MakeReplicaBlock(const IndexTree& tree,
                                                  int levels,
                                                  int num_channels) {
  std::vector<std::vector<NodeId>> block;
  auto level_nodes = tree.LevelNodes();
  for (int level = 0; level < levels && level < tree.depth(); ++level) {
    std::vector<NodeId> column;
    for (NodeId id : level_nodes[static_cast<size_t>(level)]) {
      if (!tree.is_index(id)) continue;  // data is never replicated
      column.push_back(id);
      if (static_cast<int>(column.size()) == num_channels) {
        block.push_back(std::move(column));
        column.clear();
      }
    }
    if (!column.empty()) block.push_back(std::move(column));
  }
  return block;
}

}  // namespace

Result<ReplicatedProgram> BuildReplicatedProgram(
    const IndexTree& tree, const SlotSequence& slots, int num_channels,
    const ReplicationOptions& options) {
  if (options.root_copies < 1) {
    return InvalidArgumentError("root_copies must be >= 1");
  }
  if (options.replicate_levels < 1) {
    return InvalidArgumentError("replicate_levels must be >= 1");
  }
  BCAST_RETURN_IF_ERROR(ValidateSlotSequence(tree, num_channels, slots));
  auto base = BuildScheduleFromSlots(tree, num_channels, slots);
  if (!base.ok()) return base.status();
  const BroadcastSchedule& schedule = *base;
  const int base_length = schedule.num_slots();
  if (options.root_copies > base_length) {
    return InvalidArgumentError(
        "cannot fit " + std::to_string(options.root_copies) +
        " replica blocks into a " + std::to_string(base_length) +
        "-slot cycle");
  }

  const int copies = options.root_copies;
  const std::vector<std::vector<NodeId>> block =
      MakeReplicaBlock(tree, options.replicate_levels, num_channels);
  BCAST_CHECK(!block.empty());
  const int block_length = static_cast<int>(block.size());
  const int length = base_length + (copies - 1) * block_length;

  // Insertion points in base-slot coordinates: the i-th extra block airs
  // just before base slot insert_after[i], at even spacing.
  std::vector<int> insert_after;
  int previous = 0;
  for (int i = 1; i < copies; ++i) {
    int desired =
        static_cast<int>((static_cast<int64_t>(i) * base_length) / copies);
    int position = std::max(previous + 1, desired);
    BCAST_CHECK_LE(position, base_length);
    insert_after.push_back(position);
    previous = position;
  }

  ReplicatedProgram program;
  program.num_channels = num_channels;
  program.cycle_length = length;
  program.grid.assign(
      static_cast<size_t>(num_channels),
      std::vector<NodeId>(static_cast<size_t>(length), kInvalidNode));
  program.primary.assign(static_cast<size_t>(tree.num_nodes()), SlotRef{});
  program.occurrences.assign(static_cast<size_t>(tree.num_nodes()), {});

  int out = 0;
  size_t next_block = 0;
  auto emit_block = [&]() {
    for (const std::vector<NodeId>& column : block) {
      for (size_t c = 0; c < column.size(); ++c) {
        program.grid[c][static_cast<size_t>(out)] = column[c];
        program.occurrences[static_cast<size_t>(column[c])].push_back(out);
      }
      ++out;
    }
  };
  for (int base_slot = 0; base_slot < base_length; ++base_slot) {
    if (next_block < insert_after.size() &&
        insert_after[next_block] == base_slot) {
      emit_block();
      ++next_block;
    }
    for (int c = 0; c < num_channels; ++c) {
      NodeId node = schedule.at(c, base_slot);
      if (node == kInvalidNode) continue;
      program.grid[static_cast<size_t>(c)][static_cast<size_t>(out)] = node;
      program.primary[static_cast<size_t>(node)] = {c, out};
      program.occurrences[static_cast<size_t>(node)].push_back(out);
    }
    ++out;
  }
  // Blocks that land after the last base slot (insert_after == base_length).
  while (next_block < insert_after.size()) {
    emit_block();
    ++next_block;
  }
  BCAST_CHECK_EQ(out, length);

  for (auto& occurrence_list : program.occurrences) {
    std::sort(occurrence_list.begin(), occurrence_list.end());
  }
  program.root_slots = program.occurrences[static_cast<size_t>(tree.root())];
  // Debug builds re-validate the assembled program (occurrence counts, grid
  // consistency, primary-copy ordering) before handing it out.
  BCAST_DCHECK_OK(ValidateReplicatedProgram(tree, program));
  return program;
}

Status ValidateReplicatedProgram(const IndexTree& tree,
                                 const ReplicatedProgram& program) {
  if (program.num_channels < 1 || program.cycle_length < 1) {
    return FailedPreconditionError("empty replicated program");
  }
  std::vector<int> grid_occurrences(static_cast<size_t>(tree.num_nodes()), 0);
  for (int c = 0; c < program.num_channels; ++c) {
    const auto& channel = program.grid[static_cast<size_t>(c)];
    if (static_cast<int>(channel.size()) != program.cycle_length) {
      return InternalError("ragged replicated grid");
    }
    for (NodeId node : channel) {
      if (node == kInvalidNode) continue;
      if (node < 0 || node >= tree.num_nodes()) {
        return InternalError("unknown node in replicated grid");
      }
      ++grid_occurrences[static_cast<size_t>(node)];
    }
  }
  for (NodeId id = 0; id < tree.num_nodes(); ++id) {
    const auto& occurrence_list = program.occurrences[static_cast<size_t>(id)];
    if (grid_occurrences[static_cast<size_t>(id)] !=
        static_cast<int>(occurrence_list.size())) {
      return InternalError("occurrence list of '" + tree.label(id) +
                           "' does not match the grid");
    }
    if (occurrence_list.empty()) {
      return FailedPreconditionError("node '" + tree.label(id) +
                                     "' never airs");
    }
    if (tree.is_data(id) && occurrence_list.size() != 1) {
      return FailedPreconditionError("data node '" + tree.label(id) +
                                     "' is replicated");
    }
    if (!std::is_sorted(occurrence_list.begin(), occurrence_list.end())) {
      return InternalError("unsorted occurrence list");
    }
    SlotRef primary = program.primary[static_cast<size_t>(id)];
    if (!primary.placed() ||
        program.grid[static_cast<size_t>(primary.channel)]
                    [static_cast<size_t>(primary.slot)] != id) {
      return InternalError("primary placement of '" + tree.label(id) +
                           "' does not match the grid");
    }
    // Primary copies still respect the tree order (blocks only insert
    // columns, preserving the base schedule's relative order).
    NodeId parent = tree.parent(id);
    if (parent != kInvalidNode &&
        program.primary[static_cast<size_t>(parent)].slot >= primary.slot) {
      return FailedPreconditionError("primary copy of '" + tree.label(id) +
                                     "' does not follow its parent");
    }
  }
  if (program.root_slots.empty() ||
      program.root_slots !=
          program.occurrences[static_cast<size_t>(tree.root())]) {
    return InternalError("root_slots disagrees with the root's occurrences");
  }
  return Status::Ok();
}

namespace {

// Completion time of the earliest occurrence of a node readable from time p:
// bucket [s + jL, s + jL + 1) with the smallest start >= p over all
// occurrence slots s.
double NextOccurrenceEnd(double p, const std::vector<int>& occurrence_slots,
                         int cycle) {
  double best = std::numeric_limits<double>::infinity();
  for (int s : occurrence_slots) {
    double start = s;
    if (start < p) {
      start += std::ceil((p - start) / cycle) * cycle;
    }
    best = std::min(best, start + 1.0);
  }
  return best;
}

// Walks the pointer chain root -> ... -> d starting right after a root
// bucket was read at time `probe_end`; each hop takes the earliest readable
// occurrence of the next node.
double WalkToData(const IndexTree& tree, const ReplicatedProgram& program,
                  NodeId d, double probe_end, int* hops) {
  std::vector<NodeId> path = tree.AncestorsOf(d);
  path.push_back(d);
  double p = probe_end;
  *hops = 0;
  for (size_t i = 1; i < path.size(); ++i) {  // path[0] is the root, read
    p = NextOccurrenceEnd(p, program.occurrences[static_cast<size_t>(path[i])],
                          program.cycle_length);
    ++*hops;
  }
  return p;
}

// The first root bucket fully readable when starting to listen at time t.
double FirstRootEnd(const ReplicatedProgram& program, double t) {
  for (int s : program.root_slots) {
    if (static_cast<double>(s) >= t) return s + 1.0;
  }
  return program.root_slots.front() + program.cycle_length + 1.0;
}

}  // namespace

ReplicatedCosts ComputeReplicatedCosts(const IndexTree& tree,
                                       const ReplicatedProgram& program) {
  BCAST_CHECK(ValidateReplicatedProgram(tree, program).ok());
  const int length = program.cycle_length;
  const double total_weight = tree.total_data_weight();
  BCAST_CHECK_GT(total_weight, 0.0);

  ReplicatedCosts costs;
  // Arrival uniform over the cycle: within the interval (a, a+1) the first
  // usable root bucket is constant (determined by a+1), and the mean arrival
  // is a + 0.5 — so integrating per unit interval is exact.
  for (int a = 0; a < length; ++a) {
    double arrival = a + 0.5;
    double probe_end = FirstRootEnd(program, a + 1.0);
    costs.expected_probe_wait += probe_end - arrival;
    for (NodeId d : tree.DataNodes()) {
      int hops = 0;
      double done = WalkToData(tree, program, d, probe_end, &hops);
      double share = tree.weight(d) / total_weight;
      costs.expected_walk_time += share * (done - probe_end);
      costs.expected_access_time += share * (done - arrival);
      // Buckets listened: the initial channel-1 bucket that supplied the
      // next-root pointer, the root bucket, and every hop.
      costs.expected_tuning_time += share * (2.0 + hops);
    }
  }
  costs.expected_probe_wait /= length;
  costs.expected_walk_time /= length;
  costs.expected_access_time /= length;
  costs.expected_tuning_time /= length;
  return costs;
}

ReplicatedCosts SimulateReplicatedAccess(const IndexTree& tree,
                                         const ReplicatedProgram& program,
                                         Rng* rng, uint64_t num_queries) {
  BCAST_CHECK(ValidateReplicatedProgram(tree, program).ok());
  BCAST_CHECK_GT(num_queries, uint64_t{0});
  QuerySampler sampler(tree);
  ReplicatedCosts costs;
  for (uint64_t q = 0; q < num_queries; ++q) {
    double arrival = rng->UniformDouble(0.0, program.cycle_length);
    NodeId d = sampler.Sample(rng);
    double probe_end = FirstRootEnd(program, std::ceil(arrival));
    int hops = 0;
    double done = WalkToData(tree, program, d, probe_end, &hops);
    costs.expected_probe_wait += probe_end - arrival;
    costs.expected_walk_time += done - probe_end;
    costs.expected_access_time += done - arrival;
    costs.expected_tuning_time += 2.0 + hops;
  }
  double n = static_cast<double>(num_queries);
  costs.expected_probe_wait /= n;
  costs.expected_walk_time /= n;
  costs.expected_access_time /= n;
  costs.expected_tuning_time /= n;
  return costs;
}

}  // namespace bcast
