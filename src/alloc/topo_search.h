// The k-channel topological-tree search (Sections 3.1–3.2 of the paper).
//
// Algorithm 1 represents every feasible allocation as a root-to-leaf path of
// a *topological tree*: each tree node is a compound set of <= k index/data
// nodes sharing one broadcast slot, and the children of a topological node P
// are the k-component subsets of the candidate set
//     S = ∪_{y in PATH(P)} Children(y) − PATH(P).
//
// This class implements:
//  * exhaustive enumeration of that tree (no pruning) — the ground truth;
//  * the Appendix's reduced tree: Step 2 candidate pruning (Property 2 for
//    one channel, Property 3 characteristics 1/2/4 for k > 1), Step 3 subset
//    rules (heaviest-prefix data, child-of-P requirement) and Step 4 local
//    swap elimination (Lemmas 4/5 and the preorder-rank tie-break of
//    Section 3.2);
//  * two exact optimizers over the (possibly reduced) tree: depth-first
//    branch-and-bound, and the paper's best-first search with
//    E(X) = V(X) + U(X) (Section 3.1), where U(X) is an admissible estimate
//    of the remaining data wait.
//
// The search state is a bitmask of allocated nodes, so trees are limited to
// 64 nodes — the regime the paper itself targets with the exact search
// (Section 4.1 concludes the exact algorithm "is applicable only to a small
// size of the problem"; larger inputs go through src/alloc/heuristics.h).
//
// The expansion core is bitmask algebra end to end: per-node children masks,
// the data/index partition masks and the Lemma-5 preorder-rank masks are
// precomputed once at Create(), candidate sets are derived by OR/AND-NOT over
// them, and k-subset generation enumerates combinations directly over the
// 64-bit candidate mask. The depth-first optimizer draws its neighbor lists
// from a per-depth scratch arena owned by the search object, so steady-state
// expansion performs zero heap allocations (asserted by
// tests/alloc_free_search_test.cc).

#ifndef BCAST_ALLOC_TOPO_SEARCH_H_
#define BCAST_ALLOC_TOPO_SEARCH_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "alloc/allocation.h"
#include "alloc/search_budget.h"
#include "tree/index_tree.h"
#include "util/status.h"

namespace bcast {

/// Expands a root-to-leaf compound-set path of the topological tree into a
/// slot sequence: slot 0 = {root}, slot s = the nodes of path[s-1] in
/// ascending id order. Shared by the sequential and parallel engines so both
/// materialize identical bytes for identical paths.
SlotSequence CompoundPathToSlots(NodeId root, const std::vector<uint64_t>& path);

/// Exact search over the k-channel topological tree.
class TopoTreeSearch {
 public:
  /// Lower-bound estimate U(X) used by both optimizers.
  enum class BoundKind {
    /// The paper's U(X): every unallocated data node lands in the very next
    /// slot. Admissible but loose.
    kPaperNextSlot,
    /// Packed bound: unallocated data nodes, heaviest first, fill the next
    /// slots k at a time. Still admissible (ignores index nodes and ordering
    /// constraints) and much tighter. Default.
    kPacked,
  };

  struct Options {
    int num_channels = 1;
    /// Appendix Steps 2–3: candidate-set pruning and subset-generation rules
    /// (Properties 2 and 3, Lemma 3).
    bool prune_candidates = false;
    /// Appendix Step 4: local-swap elimination (Lemmas 4/5; index-node order
    /// canonicalized by preorder rank per Section 3.2).
    bool prune_local_swap = false;
    BoundKind bound = BoundKind::kPacked;
    /// Safety valve: searches give up with RESOURCE_EXHAUSTED beyond this
    /// many topological-tree node expansions.
    uint64_t max_expansions = 200'000'000;
  };

  /// Errors if the tree exceeds 64 nodes or num_channels < 1.
  static Result<TopoTreeSearch> Create(const IndexTree& tree, Options options);

  /// Counts complete root-to-leaf paths of the (possibly reduced)
  /// topological tree — the "Total Paths" quantity of the paper's Table 1.
  /// RESOURCE_EXHAUSTED once the count exceeds `limit`.
  Result<uint64_t> CountPaths(uint64_t limit);

  /// Counts nodes of the (possibly reduced) topological tree, the size
  /// measure visible in Figs. 6/7 versus Figs. 9/10.
  Result<uint64_t> CountTreeNodes(uint64_t limit);

  /// Full enumeration of the (possibly reduced) tree returning the complete
  /// SearchStats — in particular the per-rule PruneCounts. Unlike the
  /// optimizers this walk never consults a bound or incumbent, so its counts
  /// are a pure function of (tree, options): identical across runs and
  /// thread counts. RESOURCE_EXHAUSTED beyond `limit` visited nodes.
  Result<SearchStats> ReducedTreeStats(uint64_t limit);

  /// Exact optimum by depth-first branch-and-bound.
  ///
  /// `seed_cost_v` optionally seeds the incumbent with the total weighted
  /// wait V (ADW x total data weight) of a known feasible allocation — e.g.
  /// a heuristic solution or the previous replan cycle's allocation. The
  /// seed is a pure upper bound: children are cut only when their admissible
  /// estimate *strictly exceeds* it, so equal-cost optima always survive and
  /// the returned slots/ADW are byte-identical to the unseeded search; only
  /// bound_cutoffs / nodes_expanded shrink. A seed below the true optimum
  /// makes every path a dead end (INTERNAL error) — callers add relative
  /// slack for float round-trips (see FindOptimalAllocation).
  ///
  /// `budget` (optional) makes the search *anytime*: when a budget stop
  /// condition fires mid-search, the best incumbent so far is returned with
  /// provenance kAnytime and [cost_lower_bound, cost_upper_bound] bracketing
  /// the true optimum (the lower bound folds the admissible estimates of
  /// every abandoned subtree). The DFS visits states in one canonical order,
  /// so a pure expansion-count budget is fully deterministic. A budget that
  /// fires before the first complete path yields RESOURCE_EXHAUSTED.
  Result<AllocationResult> FindOptimalDfs(
      double seed_cost_v = std::numeric_limits<double>::infinity(),
      const SearchBudget* budget = nullptr);

  /// Exact optimum by the paper's best-first strategy (priority queue on
  /// E(X) = V(X) + U(X), with dominance pruning on equal states).
  ///
  /// `seed_cost_v` keeps states with E > seed out of the open list (counted
  /// as bound_cutoffs). The cost of the result is unaffected; unlike the DFS
  /// the pop order among equal-(E, V) entries depends on the push sequence,
  /// so *which* of several equal-cost optima is returned may differ from the
  /// unseeded run (best-first never promised the DFS tie-break either).
  Result<AllocationResult> FindOptimalBestFirst(
      double seed_cost_v = std::numeric_limits<double>::infinity());

  // --- expansion building blocks ------------------------------------------
  // Shared with the parallel engine (src/exec/parallel_search.h via the
  // src/alloc/topo_parallel.h adapter) so both engines expand exactly the
  // same reduced tree. All three are pure const reads of the finalized tree
  // and the options — safe to call concurrently.

  /// Sum of data weights inside a compound-set bitmask.
  double SetDataWeight(uint64_t set) const;

  /// Generates the next-neighbor compound sets of `last_set` given the
  /// allocated-set `mask`, applying the configured pruning. Appends submasks
  /// to `out` in generation order (callers impose the canonical order).
  void GenerateNeighbors(uint64_t mask, uint64_t last_set,
                         std::vector<uint64_t>* out, SearchStats* stats) const;

  /// Admissible lower bound on the *additional* weighted wait of data nodes
  /// not in `mask`, if the next slot index is `depth + 1` (1-based).
  double LowerBound(uint64_t mask, int depth) const;

  /// Canonical strict total order on sibling compound sets: data weight
  /// descending, then bitmask ascending. Both exact engines visit neighbors
  /// in this order, which makes "the first optimum found" a well-defined,
  /// thread-count-independent allocation (the preorder tie-break of the
  /// determinism contract).
  bool SubsetLess(uint64_t a, uint64_t b) const;

  /// Bitmask with every tree node allocated (the goal test).
  uint64_t full_mask() const { return full_mask_; }

  const Options& options() const { return options_; }
  const IndexTree& tree() const { return tree_; }

 private:
  TopoTreeSearch(const IndexTree& tree, Options options);

  // Candidate set S for the allocated-set `mask`: nodes whose parent is
  // allocated but which are not, as a bitmask (union of the precomputed
  // children masks of the allocated nodes, minus the allocated nodes).
  uint64_t CandidateMask(uint64_t mask) const;

  // Depth-first worker shared by counting and branch-and-bound.
  struct DfsContext;
  Status Dfs(DfsContext* ctx, uint64_t mask, uint64_t last_set, int depth,
             double v);

  const IndexTree& tree_;
  Options options_;
  uint64_t full_mask_ = 0;
  std::vector<NodeId> data_by_weight_;  // data ids, heaviest first

  // --- bitmask tables, fixed at construction --------------------------------
  uint64_t data_mask_ = 0;   // bit set iff the node is a data node
  uint64_t index_mask_ = 0;  // complement of data_mask_ within full_mask_
  std::vector<double> weight_;          // weight_[id] == tree_.weight(id)
  std::vector<uint64_t> children_mask_; // children of node id, as bits
  // higher_rank_mask_[x]: index nodes with preorder rank > rank(x) (the
  // Lemma 5 canonical-order test reduces to one AND against this).
  std::vector<uint64_t> higher_rank_mask_;

  // Per-depth neighbor arenas for the depth-first walks (optimize and the
  // counting modes). Each depth owns one vector that grows to its high-water
  // mark on first descent and is reused ever after, so steady-state DFS
  // expansion allocates nothing. Only the non-const entry points touch it —
  // the const building blocks above stay safe for concurrent use by the
  // parallel engine.
  std::vector<std::vector<uint64_t>> level_scratch_;
};

}  // namespace bcast

#endif  // BCAST_ALLOC_TOPO_SEARCH_H_
