#include "alloc/baselines.h"

#include <algorithm>
#include <string>

#include "alloc/data_tree.h"
#include "alloc/heuristics.h"
#include "broadcast/cost.h"
#include "obs/obs.h"

namespace bcast {

namespace {

Result<AllocationResult> FinishFromSlots(const IndexTree& tree,
                                         int num_channels, SlotSequence slots,
                                         PlanProvenance provenance) {
  BCAST_RETURN_IF_ERROR(ValidateSlotSequence(tree, num_channels, slots));
  AllocationResult result;
  result.slots = std::move(slots);
  result.average_data_wait = SlotSequenceDataWait(tree, result.slots);
  result.provenance = provenance;
  result.cost_upper_bound = result.average_data_wait;
  // Exact products bracket themselves; everything else reports the cheap
  // instance-wide release-date relaxation as its optimum lower bound.
  result.cost_lower_bound = provenance == PlanProvenance::kExact
                                ? result.average_data_wait
                                : DataWaitLowerBound(tree, num_channels);
  return result;
}

}  // namespace

Result<AllocationResult> LevelAllocation(const IndexTree& tree,
                                         int num_channels) {
  if (!tree.finalized()) {
    return FailedPreconditionError("index tree must be finalized");
  }
  if (num_channels < tree.max_level_width()) {
    return InvalidArgumentError(
        "level allocation needs at least " +
        std::to_string(tree.max_level_width()) + " channels (widest level), got " +
        std::to_string(num_channels));
  }
  // Corollary 1: with channels >= the widest level, broadcasting level by
  // level is optimal and no search runs at all.
  obs::GetCounter("planner.corollary1_level_allocations").Increment();
  return FinishFromSlots(tree, num_channels, tree.LevelNodes(),
                         PlanProvenance::kExact);
}

Result<AllocationResult> PreorderBaseline(const IndexTree& tree,
                                          int num_channels) {
  if (!tree.finalized()) {
    return FailedPreconditionError("index tree must be finalized");
  }
  if (num_channels < 1) return InvalidArgumentError("need at least one channel");
  return FinishFromSlots(tree, num_channels,
                         PackLinearOrder(tree, num_channels,
                                         tree.PreorderSequence()),
                         PlanProvenance::kHeuristic);
}

Result<AllocationResult> GreedyWeightBaseline(const IndexTree& tree,
                                              int num_channels) {
  if (!tree.finalized()) {
    return FailedPreconditionError("index tree must be finalized");
  }
  if (num_channels < 1) return InvalidArgumentError("need at least one channel");
  std::vector<NodeId> data = tree.DataNodes();
  std::sort(data.begin(), data.end(), [&](NodeId a, NodeId b) {
    if (tree.weight(a) != tree.weight(b)) return tree.weight(a) > tree.weight(b);
    return a < b;
  });
  SlotSequence single = BroadcastFromDataOrder(tree, data);
  std::vector<NodeId> order;
  order.reserve(static_cast<size_t>(tree.num_nodes()));
  for (const auto& slot : single) order.push_back(slot[0]);
  return FinishFromSlots(tree, num_channels,
                         PackLinearOrder(tree, num_channels, order),
                         PlanProvenance::kHeuristic);
}

Result<AllocationResult> RandomFeasibleAllocation(const IndexTree& tree,
                                                  int num_channels, Rng* rng) {
  if (!tree.finalized()) {
    return FailedPreconditionError("index tree must be finalized");
  }
  if (num_channels < 1) return InvalidArgumentError("need at least one channel");
  // Random topological order: repeatedly draw uniformly among nodes whose
  // parent has been emitted.
  std::vector<NodeId> order;
  order.reserve(static_cast<size_t>(tree.num_nodes()));
  std::vector<bool> emitted(static_cast<size_t>(tree.num_nodes()), false);
  std::vector<NodeId> frontier = {tree.root()};
  while (!frontier.empty()) {
    size_t pick = static_cast<size_t>(
        rng->UniformInt(0, static_cast<int64_t>(frontier.size()) - 1));
    NodeId node = frontier[pick];
    frontier[pick] = frontier.back();
    frontier.pop_back();
    emitted[static_cast<size_t>(node)] = true;
    order.push_back(node);
    for (NodeId child : tree.children(node)) frontier.push_back(child);
  }
  return FinishFromSlots(tree, num_channels,
                         PackLinearOrder(tree, num_channels, order),
                         PlanProvenance::kHeuristic);
}

}  // namespace bcast
