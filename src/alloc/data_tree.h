// The single-channel *data tree* search (Section 3.3 of the paper).
//
// For one broadcast channel the index nodes can be factored out of the
// search: in an optimal allocation every index node is pushed as late as
// possible, i.e. it is emitted immediately before the first of its
// descendants in the data order (its Nancestor position). The solution space
// therefore reduces to permutations of the data nodes; the broadcast is
// regenerated with
//     for i = 1..|D|: output Nancestor(Di), then output Di
// where Nancestor(Di) = Ancestor(Di) − Cancestor(Di-1).
//
// Pruning toggles map to the paper's Table 1 columns:
//  * lemma3_group_order — data nodes sharing a parent appear in descending
//    weight order (the "By Property 2" accounting, (nm)!/(m!)^n paths);
//  * property1          — once every index node has been emitted, the
//    remaining data nodes are appended in descending weight order
//    ("By Property 1, 2");
//  * property4          — the pairwise exchange condition
//      (|Nanc(Di+1)|+1)·W(Di) >= (|Nanc(Di)−Anc(Di+1)|+1)·W(Di+1)
//    derived from Lemma 6 ("By Property 1, 2, 4");
//  * extended_exchange  — Corollary 2's m-and-n generalization, here the
//    2-and-1 block exchange (an ablation extension).

#ifndef BCAST_ALLOC_DATA_TREE_H_
#define BCAST_ALLOC_DATA_TREE_H_

#include <cstdint>
#include <vector>

#include "alloc/allocation.h"
#include "tree/index_tree.h"
#include "util/status.h"

namespace bcast {

struct DataTreeOptions {
  bool lemma3_group_order = true;
  bool property1 = true;
  bool property4 = true;
  bool extended_exchange = false;
  /// Give up with RESOURCE_EXHAUSTED beyond this many search steps.
  uint64_t max_steps = 2'000'000'000;
};

/// Single-channel search over the (pruned) data tree.
class DataTreeSearch {
 public:
  /// Errors if the tree exceeds 64 nodes.
  static Result<DataTreeSearch> Create(const IndexTree& tree,
                                       DataTreeOptions options);

  /// Number of root-to-leaf paths in the reduced data tree — the paper's
  /// Table 1 "Total Paths". RESOURCE_EXHAUSTED once the count exceeds
  /// `limit`.
  Result<uint64_t> CountPaths(uint64_t limit);

  /// Optimal single-channel allocation (branch-and-bound over the reduced
  /// data tree; exact as long as the enabled prunings are the paper's).
  Result<AllocationResult> FindOptimal();

 private:
  DataTreeSearch(const IndexTree& tree, DataTreeOptions options);

  struct Context;
  Status Dfs(Context* ctx);

  // Returns data ids eligible as the next pick under lemma3_group_order.
  void EligibleData(uint64_t chosen_data, std::vector<NodeId>* out) const;

  // Exact cost of the Property-1 forced tail / admissible completion bound.
  double CompletionCost(uint64_t chosen_data, int position) const;
  double RemainingLowerBound(uint64_t chosen_data, int position) const;

  const IndexTree& tree_;
  DataTreeOptions options_;
  std::vector<NodeId> data_nodes_;            // preorder
  std::vector<NodeId> data_by_weight_;        // heaviest first
  std::vector<std::vector<NodeId>> groups_;   // sibling groups, heaviest first
  std::vector<uint64_t> ancestor_mask_;       // per node id: proper ancestors
  uint64_t all_index_mask_ = 0;
  uint64_t all_data_mask_ = 0;
};

/// Expands a data-node order into the full single-channel broadcast (one node
/// per slot) with lazily inserted ancestors. Check-fails unless `order` is a
/// permutation of the tree's data nodes.
SlotSequence BroadcastFromDataOrder(const IndexTree& tree,
                                    const std::vector<NodeId>& order);

}  // namespace bcast

#endif  // BCAST_ALLOC_DATA_TREE_H_
