// Allocation-invariant verifier: independent static checking of allocations
// and schedules.
//
// Every result in the paper rests on two structural invariants of the
// allocation mapping f : I ∪ D → C × S — it is one-to-one, and every child is
// broadcast strictly after its parent (Section 2.2). The algorithms in
// src/alloc/ enforce these by construction; this subsystem re-derives them
// from first principles on any produced artifact, so a bug anywhere in the
// 500-line searches surfaces as a structured report instead of a silently
// wrong schedule. Checks performed:
//
//   (a) bijectivity — every tree node placed exactly once, no cell collisions;
//   (b) ordering    — child strictly after parent (Algorithm 1 feasibility);
//   (c) bounds      — channels/slots in range, per-slot capacity <= k, cycle
//                     length consistent with the highest occupied slot;
//   (d) cost        — an independent average-data-wait recomputation (its own
//                     weight summation, no calls into the checked code),
//                     cross-checked against a claimed ADW and, for concrete
//                     schedules, against broadcast/cost.cc.
//
// Unlike the boolean-ish ValidateSlotSequence / ValidateSchedule fast paths
// (which stop at the first problem), the verifier collects *all* violations
// with the offending node ids, for diagnostics (`bcastctl verify`) and for
// the debug-build hooks at the exits of the allocation algorithms.
//
// Layering: this library depends on tree/ and broadcast/ only, so that
// alloc/ (whose outputs it checks) can link against it without a cycle.

#ifndef BCAST_VERIFY_VERIFIER_H_
#define BCAST_VERIFY_VERIFIER_H_

#include <string>
#include <vector>

#include "broadcast/schedule.h"
#include "tree/index_tree.h"
#include "util/status.h"

namespace bcast {

/// The classes of invariant violation the verifier distinguishes.
enum class ViolationKind {
  kUnknownNode,         // id outside the tree's id space
  kDuplicatePlacement,  // node appears in more than one cell (bijectivity)
  kMissingNode,         // node never placed (bijectivity)
  kChannelOutOfRange,   // placement on a channel >= num_channels (or < 0)
  kSlotOutOfRange,      // placement beyond the declared cycle length
  kSlotOverflow,        // more nodes in one slot than channels exist
  kGridInconsistency,   // grid cell and placement map disagree
  kOrderViolation,      // child not strictly after its parent
  kCycleLengthMismatch, // declared/implied cycle length vs occupancy
  kDataWaitMismatch,    // claimed ADW differs from the recomputation
};

/// Canonical name ("DUPLICATE_PLACEMENT", "ORDER_VIOLATION", ...).
const char* ViolationKindName(ViolationKind kind);

/// One violation, naming the offending node(s).
struct Violation {
  ViolationKind kind = ViolationKind::kUnknownNode;
  /// Primary offender (kInvalidNode for tree-independent findings such as a
  /// cycle-length mismatch).
  NodeId node = kInvalidNode;
  /// Second party when the violation is a relation: the parent of an
  /// order violation, the first copy of a duplicate placement.
  NodeId other = kInvalidNode;
  std::string detail;  // human-readable, with labels and 1-based slots

  /// "ORDER_VIOLATION node 5: child 'D' (slot 2) not after parent '4' (slot 3)"
  std::string ToString() const;
};

/// The verifier's structured result: all violations found, plus the
/// independently recomputed average data wait when the allocation was sound
/// enough to price (every data node placed exactly once).
struct VerifyReport {
  std::vector<Violation> violations;
  /// Violations beyond Options::max_violations found but not recorded.
  int suppressed = 0;
  /// Valid iff `priced` — structural damage can make the ADW meaningless.
  double recomputed_data_wait = 0.0;
  bool priced = false;

  bool ok() const { return violations.empty() && suppressed == 0; }

  /// One violation per line; empty string for a clean report.
  std::string ToString() const;

  /// OK for a clean report; FailedPreconditionError carrying the full
  /// rendered report otherwise. Bridges into the Status/Result model.
  Status ToStatus() const;
};

/// Verifies allocations of one index tree. Stateless beyond the tree
/// reference and options; cheap to construct per call site.
class AllocationVerifier {
 public:
  struct Options {
    /// Absolute tolerance when comparing average data waits (they are exact
    /// rational sums evaluated in double; 1e-6 buckets is far above any
    /// rounding noise and far below any real misplacement).
    double adw_tolerance = 1e-6;
    /// Cap on collected violations so a corrupt megabyte-scale program file
    /// cannot produce a megabyte-scale report.
    int max_violations = 100;
  };

  explicit AllocationVerifier(const IndexTree& tree);
  AllocationVerifier(const IndexTree& tree, Options options);

  /// Checks a channel-agnostic slot sequence (`slots[s]` = nodes sharing slot
  /// s): bijectivity, per-slot capacity <= num_channels, ordering, no empty
  /// slots (every algorithm emits dense cycles; an empty slot means the
  /// producer lost track of its cycle length).
  VerifyReport VerifySlots(int num_channels,
                           const std::vector<std::vector<NodeId>>& slots) const;

  /// VerifySlots plus the cost cross-check: the producer's claimed average
  /// data wait must match the independent recomputation.
  VerifyReport VerifySlots(int num_channels,
                           const std::vector<std::vector<NodeId>>& slots,
                           double claimed_data_wait) const;

  /// Checks a concrete channel × slot schedule: bijectivity, bounds,
  /// grid/placement-map agreement, ordering; the recomputed ADW is also
  /// cross-checked against broadcast/cost.cc's AverageDataWait.
  VerifyReport VerifySchedule(const BroadcastSchedule& schedule) const;

  /// Checks a raw grid (`grid[channel][slot]`, kInvalidNode for empty
  /// buckets) against declared dimensions — the lenient-parse form of a
  /// program file, where nothing can be assumed. Rows beyond `num_channels`
  /// or cells beyond `num_slots` are reported per offending node.
  VerifyReport VerifyGrid(int num_channels, int num_slots,
                          const std::vector<std::vector<NodeId>>& grid) const;

 private:
  class Collector;

  /// Shared core over a node -> 1-based-slot map (-1 = unplaced): ordering,
  /// missing nodes, and — when `allow_pricing` and the map is complete — the
  /// independent ADW recomputation, written into `report`.
  void CheckOrderAndPrice(const std::vector<int>& slot_of, bool allow_pricing,
                          Collector* out, VerifyReport* report) const;

  std::string NodeName(NodeId id) const;

  const IndexTree& tree_;
  Options options_;
};

}  // namespace bcast

#endif  // BCAST_VERIFY_VERIFIER_H_
