#include "verify/verifier.h"

#include <cmath>
#include <sstream>

#include "broadcast/cost.h"
#include "util/check.h"

namespace bcast {

const char* ViolationKindName(ViolationKind kind) {
  switch (kind) {
    case ViolationKind::kUnknownNode:
      return "UNKNOWN_NODE";
    case ViolationKind::kDuplicatePlacement:
      return "DUPLICATE_PLACEMENT";
    case ViolationKind::kMissingNode:
      return "MISSING_NODE";
    case ViolationKind::kChannelOutOfRange:
      return "CHANNEL_OUT_OF_RANGE";
    case ViolationKind::kSlotOutOfRange:
      return "SLOT_OUT_OF_RANGE";
    case ViolationKind::kSlotOverflow:
      return "SLOT_OVERFLOW";
    case ViolationKind::kGridInconsistency:
      return "GRID_INCONSISTENCY";
    case ViolationKind::kOrderViolation:
      return "ORDER_VIOLATION";
    case ViolationKind::kCycleLengthMismatch:
      return "CYCLE_LENGTH_MISMATCH";
    case ViolationKind::kDataWaitMismatch:
      return "DATA_WAIT_MISMATCH";
  }
  return "UNKNOWN_VIOLATION";
}

std::string Violation::ToString() const {
  std::ostringstream os;
  os << ViolationKindName(kind);
  if (node != kInvalidNode) os << " node " << node;
  os << ": " << detail;
  return os.str();
}

std::string VerifyReport::ToString() const {
  std::ostringstream os;
  for (const Violation& violation : violations) {
    os << violation.ToString() << "\n";
  }
  if (suppressed > 0) {
    os << "(+" << suppressed << " more violations suppressed)\n";
  }
  return os.str();
}

Status VerifyReport::ToStatus() const {
  if (ok()) return Status::Ok();
  size_t total = violations.size() + static_cast<size_t>(suppressed);
  return FailedPreconditionError("allocation verification found " +
                                 std::to_string(total) + " violation(s):\n" +
                                 ToString());
}

// Caps the report at Options::max_violations, counting the overflow.
class AllocationVerifier::Collector {
 public:
  Collector(int cap, VerifyReport* report) : cap_(cap), report_(report) {}

  void Add(ViolationKind kind, NodeId node, NodeId other, std::string detail) {
    if (static_cast<int>(report_->violations.size()) >= cap_) {
      ++report_->suppressed;
      return;
    }
    report_->violations.push_back({kind, node, other, std::move(detail)});
  }

  bool any() const {
    return !report_->violations.empty() || report_->suppressed > 0;
  }

 private:
  int cap_;
  VerifyReport* report_;
};

AllocationVerifier::AllocationVerifier(const IndexTree& tree)
    : AllocationVerifier(tree, Options()) {}

AllocationVerifier::AllocationVerifier(const IndexTree& tree, Options options)
    : tree_(tree), options_(options) {
  BCAST_CHECK(tree.finalized()) << "verifier needs a finalized tree";
  BCAST_CHECK_GE(options_.max_violations, 1);
}

std::string AllocationVerifier::NodeName(NodeId id) const {
  if (id < 0 || id >= tree_.num_nodes()) return "#" + std::to_string(id);
  const std::string& label = tree_.label(id);
  if (label.empty()) return "#" + std::to_string(id);
  return "'" + label + "'";
}

void AllocationVerifier::CheckOrderAndPrice(const std::vector<int>& slot_of,
                                            bool allow_pricing, Collector* out,
                                            VerifyReport* report) const {
  bool complete = true;
  for (NodeId id = 0; id < tree_.num_nodes(); ++id) {
    int slot = slot_of[static_cast<size_t>(id)];
    if (slot == -1) {
      complete = false;
      out->Add(ViolationKind::kMissingNode, id, kInvalidNode,
               "node " + NodeName(id) + " is never broadcast");
      continue;
    }
    NodeId parent = tree_.parent(id);
    if (parent == kInvalidNode) continue;
    int parent_slot = slot_of[static_cast<size_t>(parent)];
    if (parent_slot != -1 && parent_slot >= slot) {
      out->Add(ViolationKind::kOrderViolation, id, parent,
               "child " + NodeName(id) + " (slot " + std::to_string(slot) +
                   ") is not strictly after its parent " + NodeName(parent) +
                   " (slot " + std::to_string(parent_slot) + ")");
    }
  }
  if (!allow_pricing || !complete) return;

  // Independent recomputation of the paper's formula (1): both the weighted
  // sum and the normalizer are re-derived here rather than taken from
  // IndexTree::total_data_weight() or broadcast/cost.cc.
  double weighted = 0.0;
  double total_weight = 0.0;
  for (NodeId id = 0; id < tree_.num_nodes(); ++id) {
    if (!tree_.is_data(id)) continue;
    total_weight += tree_.weight(id);
    weighted +=
        tree_.weight(id) * static_cast<double>(slot_of[static_cast<size_t>(id)]);
  }
  // All-zero weights make the ADW undefined; leave the report unpriced.
  if (total_weight <= 0.0) return;
  report->recomputed_data_wait = weighted / total_weight;
  report->priced = true;
}

VerifyReport AllocationVerifier::VerifySlots(
    int num_channels, const std::vector<std::vector<NodeId>>& slots) const {
  VerifyReport report;
  Collector out(options_.max_violations, &report);

  std::vector<int> slot_of(static_cast<size_t>(tree_.num_nodes()), -1);
  bool sound = true;  // no unknowns/duplicates -> the ADW is well defined
  for (size_t s = 0; s < slots.size(); ++s) {
    int slot_number = static_cast<int>(s) + 1;
    if (slots[s].empty()) {
      out.Add(ViolationKind::kCycleLengthMismatch, kInvalidNode, kInvalidNode,
              "slot " + std::to_string(slot_number) +
                  " is empty: the producer lost track of its cycle length");
    }
    if (num_channels >= 1 &&
        static_cast<int>(slots[s].size()) > num_channels) {
      NodeId overflow = slots[s][static_cast<size_t>(num_channels)];
      out.Add(ViolationKind::kSlotOverflow,
              (overflow >= 0 && overflow < tree_.num_nodes()) ? overflow
                                                              : kInvalidNode,
              kInvalidNode,
              "slot " + std::to_string(slot_number) + " holds " +
                  std::to_string(slots[s].size()) + " nodes but only " +
                  std::to_string(num_channels) + " channel(s) exist");
    }
    for (NodeId node : slots[s]) {
      if (node < 0 || node >= tree_.num_nodes()) {
        sound = false;
        out.Add(ViolationKind::kUnknownNode, node, kInvalidNode,
                "slot " + std::to_string(slot_number) +
                    " references node id " + std::to_string(node) +
                    " outside the tree's " + std::to_string(tree_.num_nodes()) +
                    "-node id space");
        continue;
      }
      int& seen = slot_of[static_cast<size_t>(node)];
      if (seen != -1) {
        sound = false;
        out.Add(ViolationKind::kDuplicatePlacement, node, node,
                "node " + NodeName(node) + " placed in both slot " +
                    std::to_string(seen) + " and slot " +
                    std::to_string(slot_number) +
                    " (the mapping must be one-to-one)");
        continue;
      }
      seen = slot_number;
    }
  }
  CheckOrderAndPrice(slot_of, sound, &out, &report);
  return report;
}

VerifyReport AllocationVerifier::VerifySlots(
    int num_channels, const std::vector<std::vector<NodeId>>& slots,
    double claimed_data_wait) const {
  VerifyReport report = VerifySlots(num_channels, slots);
  if (report.priced &&
      std::abs(report.recomputed_data_wait - claimed_data_wait) >
          options_.adw_tolerance) {
    Collector out(options_.max_violations, &report);
    std::ostringstream os;
    os << "claimed average data wait " << claimed_data_wait
       << " but the independent recomputation gives "
       << report.recomputed_data_wait;
    out.Add(ViolationKind::kDataWaitMismatch, kInvalidNode, kInvalidNode,
            os.str());
  }
  return report;
}

VerifyReport AllocationVerifier::VerifySchedule(
    const BroadcastSchedule& schedule) const {
  VerifyReport report;
  Collector out(options_.max_violations, &report);

  const int num_channels = schedule.num_channels();
  const int num_slots = schedule.num_slots();
  std::vector<int> slot_of(static_cast<size_t>(tree_.num_nodes()), -1);
  bool sound = true;

  // Placement-map side: bounds, and agreement with the grid.
  for (NodeId id = 0; id < tree_.num_nodes(); ++id) {
    SlotRef ref = schedule.placement(id);
    if (!ref.placed()) continue;  // reported as MISSING_NODE below
    if (ref.channel < 0 || ref.channel >= num_channels) {
      sound = false;
      out.Add(ViolationKind::kChannelOutOfRange, id, kInvalidNode,
              "node " + NodeName(id) + " placed on channel " +
                  std::to_string(ref.channel + 1) + " but the schedule has " +
                  std::to_string(num_channels) + " channel(s)");
      continue;
    }
    if (ref.slot < 0 || ref.slot >= num_slots) {
      sound = false;
      out.Add(ViolationKind::kSlotOutOfRange, id, kInvalidNode,
              "node " + NodeName(id) + " placed in slot " +
                  std::to_string(ref.slot + 1) + " beyond the " +
                  std::to_string(num_slots) + "-slot cycle");
      continue;
    }
    NodeId occupant = schedule.at(ref.channel, ref.slot);
    if (occupant != id) {
      sound = false;
      out.Add(ViolationKind::kGridInconsistency, id, occupant,
              "placement of node " + NodeName(id) + " points to C" +
                  std::to_string(ref.channel + 1) + "[" +
                  std::to_string(ref.slot + 1) + "] but that bucket holds " +
                  (occupant == kInvalidNode ? std::string("nothing")
                                            : NodeName(occupant)));
      continue;
    }
    slot_of[static_cast<size_t>(id)] = ref.slot + 1;
  }

  // Grid side: every occupied cell must be owned by its occupant's placement
  // (a second copy of a node can only appear as a disowned cell).
  int highest_occupied = -1;
  for (int c = 0; c < num_channels; ++c) {
    for (int s = 0; s < num_slots; ++s) {
      NodeId node = schedule.at(c, s);
      if (node == kInvalidNode) continue;
      highest_occupied = std::max(highest_occupied, s);
      if (node < 0 || node >= tree_.num_nodes()) {
        sound = false;
        out.Add(ViolationKind::kUnknownNode, node, kInvalidNode,
                "bucket C" + std::to_string(c + 1) + "[" +
                    std::to_string(s + 1) + "] holds node id " +
                    std::to_string(node) + " outside the tree's id space");
        continue;
      }
      SlotRef ref = schedule.placement(node);
      if (!(ref == SlotRef{c, s})) {
        sound = false;
        out.Add(ViolationKind::kDuplicatePlacement, node, node,
                "node " + NodeName(node) + " also occupies bucket C" +
                    std::to_string(c + 1) + "[" + std::to_string(s + 1) +
                    "] (the mapping must be one-to-one)");
      }
    }
  }
  if (num_slots > 0 && highest_occupied != num_slots - 1) {
    out.Add(ViolationKind::kCycleLengthMismatch, kInvalidNode, kInvalidNode,
            "cycle declares " + std::to_string(num_slots) +
                " slot(s) but the highest occupied slot is " +
                std::to_string(highest_occupied + 1));
  }

  CheckOrderAndPrice(slot_of, sound, &out, &report);

  // Cross-check against the production cost model only when the schedule is
  // fully valid (AverageDataWait check-fails on structurally broken input).
  if (report.ok() && report.priced) {
    double model = AverageDataWait(tree_, schedule);
    if (std::abs(model - report.recomputed_data_wait) >
        options_.adw_tolerance) {
      std::ostringstream os;
      os << "broadcast/cost.cc computes average data wait " << model
         << " but the independent recomputation gives "
         << report.recomputed_data_wait;
      out.Add(ViolationKind::kDataWaitMismatch, kInvalidNode, kInvalidNode,
              os.str());
    }
  }
  return report;
}

VerifyReport AllocationVerifier::VerifyGrid(
    int num_channels, int num_slots,
    const std::vector<std::vector<NodeId>>& grid) const {
  VerifyReport report;
  Collector out(options_.max_violations, &report);

  std::vector<int> slot_of(static_cast<size_t>(tree_.num_nodes()), -1);
  bool sound = true;
  int highest_occupied = -1;
  for (size_t c = 0; c < grid.size(); ++c) {
    for (size_t s = 0; s < grid[c].size(); ++s) {
      NodeId node = grid[c][s];
      if (node == kInvalidNode) continue;
      int slot_number = static_cast<int>(s) + 1;
      if (node < 0 || node >= tree_.num_nodes()) {
        sound = false;
        out.Add(ViolationKind::kUnknownNode, node, kInvalidNode,
                "bucket C" + std::to_string(c + 1) + "[" +
                    std::to_string(slot_number) + "] holds node id " +
                    std::to_string(node) + " outside the tree's id space");
        continue;
      }
      if (static_cast<int>(c) >= num_channels) {
        sound = false;
        out.Add(ViolationKind::kChannelOutOfRange, node, kInvalidNode,
                "node " + NodeName(node) + " on channel " +
                    std::to_string(c + 1) + " but only " +
                    std::to_string(num_channels) + " channel(s) are declared");
        continue;
      }
      if (static_cast<int>(s) >= num_slots) {
        sound = false;
        out.Add(ViolationKind::kSlotOutOfRange, node, kInvalidNode,
                "node " + NodeName(node) + " in slot " +
                    std::to_string(slot_number) + " beyond the declared " +
                    std::to_string(num_slots) + "-slot cycle");
        continue;
      }
      highest_occupied = std::max(highest_occupied, static_cast<int>(s));
      int& seen = slot_of[static_cast<size_t>(node)];
      if (seen != -1) {
        sound = false;
        out.Add(ViolationKind::kDuplicatePlacement, node, node,
                "node " + NodeName(node) + " placed in both slot " +
                    std::to_string(seen) + " and slot " +
                    std::to_string(slot_number) +
                    " (the mapping must be one-to-one)");
        continue;
      }
      seen = slot_number;
    }
  }
  if (highest_occupied != -1 && highest_occupied != num_slots - 1) {
    out.Add(ViolationKind::kCycleLengthMismatch, kInvalidNode, kInvalidNode,
            "header declares " + std::to_string(num_slots) +
                " slot(s) but the highest occupied slot is " +
                std::to_string(highest_occupied + 1));
  }
  CheckOrderAndPrice(slot_of, sound, &out, &report);
  return report;
}

}  // namespace bcast
